"""Differential oracles: two implementations, one answer.

Each oracle runs the same stimulus through two code paths whose
semantics are supposed to coincide and reports whether they did:

- :class:`BatchScalarDecodeOracle` -- the batched uplink regeneration
  (``process_uplink(decode=True)``, the PR-4 hot path) against an
  independent scalar re-derivation (per-carrier soft demap +
  ``decode_block``) for each decoder personality;
- :class:`CdmaBatchScalarOracle` -- the batched CDMA return-link
  engine (``CdmaReturnBank`` / ``receive_batch``) against per-user
  scalar ``receive`` calls, exact to the float;
- :class:`ModemABOracle` -- the baseline MF-TDMA modem against the
  CFO-tolerant personality on a clean channel, where their semantics
  overlap exactly (same burst format, same QPSK mapping);
- :class:`VcModeOracle` -- the controlled (AD, go-back-N) and express
  (BD) TC virtual channels, which must deliver the identical SDU
  sequence over a clean link.

A disagreement in any of them is a real defect, not a tolerance issue:
these pairs are deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..dsp.demux import multiplex_carriers
from ..dsp.modem import ebn0_to_sigma
from ..net.simnet import Link, Node
from ..net.tmtc import TmtcLayer
from ..robustness.fdir.chaos import build_traffic_world
from ..sim import RngRegistry, Simulator, derive_seed

__all__ = [
    "OracleReport",
    "BatchScalarDecodeOracle",
    "CdmaBatchScalarOracle",
    "ModemABOracle",
    "VcModeOracle",
    "run_default_oracles",
]


@dataclass(frozen=True)
class OracleReport:
    """Verdict of one differential oracle run."""

    name: str
    agree: bool
    cases: int
    detail: str = ""

    def __str__(self) -> str:
        verdict = "agree" if self.agree else "DISAGREE"
        tail = f": {self.detail}" if self.detail else ""
        return f"{self.name}: {verdict} over {self.cases} cases{tail}"


def _report(name: str, cases: int, mismatches: List[str]) -> OracleReport:
    return OracleReport(
        name=name,
        agree=not mismatches,
        cases=cases,
        detail="; ".join(mismatches[:4]),
    )


class BatchScalarDecodeOracle:
    """Batched uplink decode vs independent scalar re-derivation."""

    name = "decode.batch-vs-scalar"

    def __init__(self, seed: int = 0, frames: int = 3) -> None:
        self.seed = seed
        self.frames = frames

    def run(self) -> OracleReport:
        mismatches: List[str] = []
        cases = 0
        for personality in ("decod.conv", "decod.turbo"):
            world = build_traffic_world(
                derive_seed(self.seed, "oracle", personality)
            )
            world.payload.decoder.load(personality)
            rngs = RngRegistry(derive_seed(self.seed, "oracle", "decode"))
            bits_rng = rngs.stream(f"bits.{personality}")
            noise_rng = rngs.stream(f"noise.{personality}")
            chain = world.payload.decoder.behaviour()
            modem = world.ground_modem("modem.tdma")
            n_car = world.num_carriers
            for _f in range(self.frames):
                sent = {}
                streams = {}
                for k in range(n_car):
                    block = bits_rng.integers(
                        0, 2, chain.transport_block
                    ).astype(np.uint8)
                    coded = chain.encode(block)
                    bb = np.zeros(modem.bits_per_burst, dtype=np.uint8)
                    bb[: len(coded)] = coded[: modem.bits_per_burst]
                    s = modem.transmit(bb)
                    sigma = ebn0_to_sigma(12.0, 1, 1.0)
                    s = s + sigma * (
                        noise_rng.standard_normal(len(s))
                        + 1j * noise_rng.standard_normal(len(s))
                    )
                    sent[k] = block
                    streams[k] = s
                n = max(len(s) for s in streams.values())
                mat = np.zeros((n_car, n), dtype=np.complex128)
                for k, s in streams.items():
                    mat[k, : len(s)] = s
                wide = multiplex_carriers(mat, n_car)
                out = world.payload.process_uplink(wide, decode=True)
                for k in range(n_car):
                    diag = out["diagnostics"][k]
                    syms = diag.get("symbols")
                    batched = out["decoded"][k]
                    if syms is None:
                        if batched is not None:
                            mismatches.append(
                                f"{personality} c{k}: batched decoded a "
                                "carrier that never synchronized"
                            )
                        continue
                    cases += 1
                    # independent scalar re-derivation of the same block
                    psk = world.payload.demods[k].behaviour().psk
                    es = float(np.mean(np.abs(syms) ** 2))
                    snr = 10.0 ** (float(diag.get("snr_db", 40.0)) / 10.0)
                    var = max(es / max(snr, 1e-6), 1e-12)
                    llr = psk.demodulate_soft(syms, var)[
                        : chain.physical_bits
                    ]
                    scalar = world.payload.decode_block(llr, carrier=None)
                    if batched is None:
                        mismatches.append(
                            f"{personality} c{k}: scalar decoded but "
                            "batched skipped the carrier"
                        )
                        continue
                    if not np.array_equal(batched["bits"], scalar["bits"]):
                        mismatches.append(
                            f"{personality} c{k}: decoded bits differ "
                            "between batched and scalar paths"
                        )
                    if bool(batched["crc_ok"]) != bool(scalar["crc_ok"]):
                        mismatches.append(
                            f"{personality} c{k}: CRC verdict differs "
                            f"(batched={batched['crc_ok']}, "
                            f"scalar={scalar['crc_ok']})"
                        )
                    if bool(batched["crc_ok"]) and not np.array_equal(
                        batched["bits"], sent[k]
                    ):
                        mismatches.append(
                            f"{personality} c{k}: CRC passed but the "
                            "regenerated block differs from what was sent"
                        )
        return _report(self.name, cases, mismatches)


class CdmaBatchScalarOracle:
    """Batched CDMA return-link engine vs scalar per-user demodulation.

    Two comparisons, both required to be **exact** (same floats, same
    bits, same diagnostics -- the engine's batched==scalar-by-
    construction contract, not a tolerance):

    1. a :class:`~repro.dsp.cdma.CdmaReturnBank` demodulating U
       code-multiplexed users from one noisy composite, against each
       user's scalar :meth:`~repro.dsp.cdma.CdmaModem.receive` on the
       same composite samples;
    2. :meth:`~repro.dsp.cdma.CdmaModem.receive_batch` on a stack of
       independent bursts, against :meth:`receive` row by row.
    """

    name = "modem.cdma.batch-vs-scalar"

    _DIAG_SCALARS = ("phase", "acq_metric", "carrier_lock", "snr_db")

    def __init__(self, seed: int = 0, num_users: int = 4, num_bits: int = 128) -> None:
        self.seed = seed
        self.num_users = num_users
        self.num_bits = num_bits

    @classmethod
    def _diff(cls, got: dict, ref: dict, label: str) -> List[str]:
        out: List[str] = []
        for key in ("bits", "symbols", "dll_tau"):
            if not np.array_equal(got[key], ref[key]):
                out.append(f"{label}: {key} differ between batched and scalar")
        for key in cls._DIAG_SCALARS:
            if got[key] != ref[key]:
                out.append(f"{label}: diagnostic {key} differs")
        ga, ra = got["acquisition"], ref["acquisition"]
        if (ga.phase, ga.metric, ga.mean_level, ga.detected) != (
            ra.phase,
            ra.metric,
            ra.mean_level,
            ra.detected,
        ):
            out.append(f"{label}: acquisition result differs")
        return out

    def run(self) -> OracleReport:
        from ..dsp.cdma import CdmaConfig, CdmaModem, CdmaReturnBank

        rngs = RngRegistry(derive_seed(self.seed, "oracle", "cdma"))
        mismatches: List[str] = []
        cases = 0

        # 1. multi-user bank vs per-user scalar on one composite
        bank = CdmaReturnBank.for_users(
            self.num_users, CdmaConfig(sf=32, code_index=3)
        )
        sent = [
            rngs.stream(f"user{u}").integers(0, 2, self.num_bits).astype(np.uint8)
            for u in range(self.num_users)
        ]
        composite = bank.transmit(sent)
        noise = rngs.stream("channel")
        composite = composite + 0.05 * (
            noise.standard_normal(len(composite))
            + 1j * noise.standard_normal(len(composite))
        )
        banked = bank.receive(composite, self.num_bits)
        for u in range(self.num_users):
            cases += 1
            scalar = bank.modems[u].receive(composite, self.num_bits)
            mismatches.extend(self._diff(banked[u], scalar, f"bank u{u}"))
            if not np.array_equal(banked[u]["bits"], sent[u]):
                mismatches.append(f"bank u{u}: recovered bits differ from sent")

        # 2. burst-stack receive_batch vs per-row scalar receive
        modem = CdmaModem(CdmaConfig(sf=16))
        bursts = []
        for b in range(self.num_users):
            bits = rngs.stream(f"burst{b}").integers(
                0, 2, self.num_bits
            ).astype(np.uint8)
            tx = modem.transmit(bits)
            n = rngs.stream(f"bnoise{b}")
            bursts.append(
                tx
                + 0.08
                * (n.standard_normal(len(tx)) + 1j * n.standard_normal(len(tx)))
            )
        stack = np.stack(bursts)
        batched = modem.receive_batch(stack, self.num_bits)
        for b in range(len(bursts)):
            cases += 1
            scalar = modem.receive(bursts[b], self.num_bits)
            mismatches.extend(self._diff(batched[b], scalar, f"burst {b}"))
        return _report(self.name, cases, mismatches)


class ModemABOracle:
    """Baseline vs CFO-tolerant modem personality on a clean channel."""

    name = "modem.tdma-vs-robust"

    def __init__(self, seed: int = 0, trials: int = 8) -> None:
        self.seed = seed
        self.trials = trials

    def run(self) -> OracleReport:
        world = build_traffic_world(derive_seed(self.seed, "oracle", "modem"))
        registry = world.payload.registry
        rngs = RngRegistry(derive_seed(self.seed, "oracle", "modem"))
        bits_rng = rngs.stream("bits")
        mismatches: List[str] = []
        cases = 0
        for t in range(self.trials):
            a = registry.get("modem.tdma").factory()
            b = registry.get("modem.tdma.robust").factory()
            bb = bits_rng.integers(0, 2, a.bits_per_burst).astype(np.uint8)
            # raw (uncoded) bit comparison: run well above the coded
            # operating point so channel noise cannot flip a bit and
            # masquerade as a personality disagreement
            sigma = ebn0_to_sigma(20.0, 1, 1.0)
            results = {}
            for label, modem in (("baseline", a), ("robust", b)):
                s = modem.transmit(bb)
                # identical noise realization for both personalities
                noise_rng = rngs.stream(f"noise.{t}")
                s = s + sigma * (
                    noise_rng.standard_normal(len(s))
                    + 1j * noise_rng.standard_normal(len(s))
                )
                results[label] = modem.receive(s)["bits"]
            cases += 1
            if not np.array_equal(results["baseline"], bb):
                mismatches.append(f"trial {t}: baseline modem lost bits")
            if not np.array_equal(results["robust"], bb):
                mismatches.append(f"trial {t}: robust modem lost bits")
            if not np.array_equal(results["baseline"], results["robust"]):
                mismatches.append(
                    f"trial {t}: personalities disagree on a clean channel"
                )
        return _report(self.name, cases, mismatches)


class VcModeOracle:
    """Controlled (AD) vs express (BD) TC virtual channels."""

    name = "tc.ad-vs-bd"

    def __init__(self, seed: int = 0, sdus: int = 6) -> None:
        self.seed = seed
        self.sdus = sdus

    def run(self) -> OracleReport:
        sim = Simulator()
        a = Node(sim, "ground", 1)
        b = Node(sim, "sat", 2)
        link = Link(sim, delay=0.25, rate_bps=1e6)
        link.attach(a)
        link.attach(b)
        tx = TmtcLayer(a)
        rx = TmtcLayer(b)
        got = {"AD": [], "BD": []}
        rx.register_handler(1, got["AD"].append)
        rx.register_handler(2, got["BD"].append)
        rng = RngRegistry(derive_seed(self.seed, "oracle", "vc")).stream(
            "payloads"
        )
        # mix of short SDUs and multi-frame segmented ones
        payloads = [
            rng.integers(0, 256, size=int(n)).astype(np.uint8).tobytes()
            for n in rng.choice([24, 96, 700], size=self.sdus)
        ]

        def driver():
            for p in payloads:
                tx.send_sdu(p, vc=1, mode="AD")
                tx.send_sdu(p, vc=2, mode="BD")
                yield sim.timeout(0.5)

        sim.process(driver(), name="vc-oracle-driver")
        sim.run(until=60.0)
        mismatches: List[str] = []
        for mode in ("AD", "BD"):
            if got[mode] != payloads:
                mismatches.append(
                    f"{mode} delivered {len(got[mode])}/{len(payloads)} "
                    "SDUs or reordered them"
                )
        if got["AD"] != got["BD"]:
            mismatches.append("AD and BD delivered different sequences")
        return _report(self.name, len(payloads), mismatches)


def run_default_oracles(seed: int = 0) -> List[OracleReport]:
    """Run every oracle at ``seed``; all must agree on a healthy tree."""
    return [
        BatchScalarDecodeOracle(seed).run(),
        CdmaBatchScalarOracle(seed).run(),
        ModemABOracle(seed).run(),
        VcModeOracle(seed).run(),
    ]
