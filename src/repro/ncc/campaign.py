"""End-to-end reconfiguration campaigns (NCC -> satellite).

Ties every piece of the reproduction together: the NCC picks a design
from the registry, renders its bitstream, uploads it over the chosen
file-transfer protocol (TFTP / FTP / SCPS-FP) riding IP over the TM/TC
space link, commands the reconfiguration through a telecommand carried
on UDP, and verifies the CRC telemetry that comes back -- the complete
§3 scenario, in simulated time.

Since the robustness PR, the campaign is **fault tolerant**:

- telecommands ride the :mod:`repro.robustness.transactions` layer --
  retransmitted under a :class:`~repro.robustness.RetryPolicy` with
  growing listen windows instead of blocking forever on a lost TC or
  TM datagram;
- uploads are retried under an upload policy
  (:func:`~repro.robustness.run_with_retry`), so one failed TFTP/FTP/
  SCPS transfer no longer aborts the campaign;
- the space side deduplicates telecommands by ``tc_id``
  (:class:`~repro.robustness.TcDedupCache`): a retransmitted TC whose
  reply was lost is answered from cache, never re-executed.

:class:`SatelliteGateway` is the space-side counterpart: it terminates
the upload protocols into the on-board bitstream library and maps the
telecommand port onto the on-board controller.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.obc import OnBoardController, Telecommand
from ..core.payload import RegenerativePayload
from ..core.registry import FunctionRegistry
from ..net import (
    FtpClient,
    FtpServer,
    ScpsFpReceiver,
    ScpsFpSender,
    TftpClient,
    TftpServer,
    UdpSocket,
)
from ..net.ftp import FtpError
from ..net.scps import ScpsError
from ..net.simnet import Node
from ..net.tftp import TftpError
from ..obs.probes import probe as _obs_probe
from ..robustness.policy import RetryPolicy, run_with_retry
from ..robustness.transactions import TC_PORT, TcDedupCache, TcTransactionClient
from ..sim import Simulator

__all__ = [
    "BoundedUploadStore",
    "CampaignResult",
    "NetworkControlCenter",
    "SatelliteGateway",
    "TC_PORT",
]

#: Default retry policy for bitstream uploads (three attempts; the
#: protocols' own ARQ handles per-block losses, this covers whole-
#: transfer failures such as a stalled stop-and-wait exchange).
DEFAULT_UPLOAD_POLICY = RetryPolicy(
    max_attempts=3, base_delay=5.0, multiplier=2.0, max_delay=60.0, jitter=0.1
)

#: Exceptions that mark one upload attempt as failed-but-retryable.
UPLOAD_RETRY_ON = (TftpError, FtpError, ScpsError, OSError)


@dataclass
class CampaignResult:
    """Outcome of one upload-and-reconfigure campaign."""

    function: str
    protocol: str
    upload_seconds: float
    command_seconds: float
    success: bool
    rolled_back: bool
    crc: Optional[int]
    telemetry: dict = field(default_factory=dict)
    #: the on-board watchdog latched this equipment into safe mode
    safe_mode: bool = False

    @property
    def total_seconds(self) -> float:
        return self.upload_seconds + self.command_seconds


def _normalize_telemetry(payload: dict) -> dict:
    """Guarantee the keys downstream consumers index, on every path.

    Historically the ``store``-failure path returned the raw error
    payload, so ``result.telemetry["crc"]`` / ``["rolled_back"]`` raised
    ``KeyError`` depending on *which* step failed.  Both result paths
    now pass through here.
    """
    out = dict(payload) if isinstance(payload, dict) else {"error": str(payload)}
    out.setdefault("crc", None)
    out.setdefault("rolled_back", False)
    out.setdefault("safe_mode", False)
    out.setdefault("final_function", None)
    return out


class BoundedUploadStore(dict):
    """Upload store with a size cap and a bounded transfer history.

    The TFTP/FTP/SCPS servers write completed transfers straight into
    this dict; a soak campaign uploading thousands of bitstreams must
    not keep every blob forever, so past ``max_files`` the oldest
    upload is evicted FIFO (``evicted`` counts them).  ``history`` is a
    ``deque(maxlen=...)`` of ``(filename, size_bytes)`` records --
    telemetry for operators, bounded by construction; overflow of the
    history itself is counted in ``history_evicted``.
    """

    def __init__(self, max_files: int = 64, history_len: int = 256) -> None:
        if max_files < 1 or history_len < 1:
            raise ValueError("max_files and history_len must be >= 1")
        super().__init__()
        self.max_files = max_files
        self.history: deque[tuple[str, int]] = deque(maxlen=history_len)
        self.evicted = 0
        self.history_evicted = 0
        self._order: deque[str] = deque()

    def __setitem__(self, key: str, value: bytes) -> None:
        if key not in self:
            self._order.append(key)
        if len(self.history) == self.history.maxlen:
            self.history_evicted += 1
        self.history.append((key, len(value)))
        super().__setitem__(key, value)
        while len(self) > self.max_files:
            oldest = self._order.popleft()
            if oldest in self:
                super().__delitem__(oldest)
                self.evicted += 1


class SatelliteGateway:
    """Space-side servers: upload endpoints + telecommand port.

    Uploaded files land in a shared dict and are registered into the
    payload's bitstream library when the ``store`` TC arrives (keeping
    the upload path and the library bookkeeping separable, as §3.2 does).

    The TC server is **idempotent**: replies are cached per ``tc_id``
    (:class:`~repro.robustness.TcDedupCache`) and a duplicate --
    i.e. ground-retransmitted -- telecommand is answered from the cache
    without re-executing, so "lost final ACK" cannot double-execute a
    reconfiguration.  Dedup hits are counted on the ``ncc.gateway``
    probe and in :attr:`stats`.
    """

    def __init__(
        self,
        node: Node,
        payload: RegenerativePayload,
        uploads: Optional[Dict[str, bytes]] = None,
        dedup_capacity: int = 256,
        admission=None,
        tc_queue_capacity: int = 256,
    ) -> None:
        self.node = node
        self.payload = payload
        self.obc: OnBoardController = payload.obc
        self.uploads: Dict[str, bytes] = (
            uploads if uploads is not None else BoundedUploadStore()
        )
        self.tftp = TftpServer(node.ip, self.uploads)
        self.ftp = FtpServer(node.ip, self.uploads)
        self.scps = ScpsFpReceiver(node.ip, files=self.uploads)
        self.dedup = TcDedupCache(capacity=dedup_capacity)
        #: optional :class:`repro.robustness.overload.AdmissionController`
        #: gating TC execution by priority class at the space-side ingress
        self.admission = admission
        #: optional :class:`repro.robustness.dtn.ResumableReceiver`
        #: serving the xfer_status / xfer_finish transfer handshake
        self.xfer = None
        self.stats = {
            "tc_received": 0,
            "executed": 0,
            "dedup_hits": 0,
            "rejected": 0,
            "shed_expired": 0,
            "shed_admission": 0,
        }
        self._probe = _obs_probe("ncc.gateway", node=node.name)
        self._tc_sock = UdpSocket(node.ip, TC_PORT, recv_capacity=tc_queue_capacity)
        node.sim.process(self._tc_server(), name="sat-tc-server")

    def attach_transfer(self, receiver) -> None:
        """Serve resumable-transfer telecommands against the upload store.

        ``receiver`` is a
        :class:`repro.robustness.dtn.ResumableReceiver`; the
        ``xfer_status`` gap report and ``xfer_finish`` reassembly
        handshake are then answered at the gateway (dedup-cached like
        any other TC), and a completed resumable transfer lands in
        :attr:`uploads` under its real filename -- invisible to the
        downstream ``store`` TC.
        """
        self.xfer = receiver

    def _shed(self, kind: str, tc_id, addr, port, reason: str) -> None:
        """Refuse a TC cheaply: count, trace, answer -- never execute.

        Shed replies are **not** dedup-cached: a retransmission of the
        same ``tc_id`` that arrives once pressure has eased (or still
        inside its deadline, for admission sheds) deserves a fresh
        decision, not a replay of the refusal.
        """
        self.stats[kind] += 1
        p = self._probe
        if p is not None:
            p.count(kind)
            p.event(
                "overload.gateway_shed",
                t=self.node.sim.now,
                tc_id=tc_id if isinstance(tc_id, int) else -1,
                reason=reason,
            )
        reply = {
            "tc_id": tc_id if isinstance(tc_id, int) else -1,
            "success": False,
            "payload": {"error": reason, "shed": True},
        }
        self._tc_sock.sendto(json.dumps(reply).encode(), addr, port)

    def _tc_server(self):
        p = self._probe
        while True:
            data, (addr, port) = yield self._tc_sock.recv()
            self.stats["tc_received"] += 1
            if p is not None:
                p.count("tc_received")
            msg = None
            tc_id = -1
            try:
                msg = json.loads(data.decode())
                tc_id = msg["tc_id"] if isinstance(msg, dict) else -1
                # -- idempotent execution: duplicates answered from cache
                if isinstance(tc_id, int) and tc_id > 0:
                    cached = self.dedup.get(tc_id)
                    if cached is not None:
                        self.stats["dedup_hits"] += 1
                        if p is not None:
                            p.count("dedup_hits")
                            p.event(
                                "gateway.dedup",
                                t=self.node.sim.now,
                                tc_id=tc_id,
                            )
                        self._tc_sock.sendto(cached, addr, port)
                        continue
                # -- overload gates, cheapest first: an expired TC is
                # shed before execution (its ground caller has already
                # given up on the result), then admission by class
                if isinstance(msg, dict):
                    expires = msg.get("deadline")
                    if (
                        isinstance(expires, (int, float))
                        and self.node.sim.now >= expires
                    ):
                        self._shed(
                            "shed_expired", tc_id, addr, port, "deadline-expired"
                        )
                        continue
                    cls = msg.get("cls")
                    if (
                        self.admission is not None
                        and cls is not None
                        and not self.admission.admit(cls)
                    ):
                        self._shed(
                            "shed_admission", tc_id, addr, port, "admission"
                        )
                        continue
                if (
                    self.xfer is not None
                    and isinstance(msg, dict)
                    and msg.get("action") in ("xfer_status", "xfer_finish")
                ):
                    ok, payload = self.xfer.handle(
                        msg["action"], msg.get("args", {})
                    )
                    self.stats["executed"] += 1
                    if p is not None:
                        p.count("executed")
                    reply = {"tc_id": tc_id, "success": bool(ok),
                             "payload": _jsonable(payload)}
                    encoded = json.dumps(reply).encode()
                    if isinstance(tc_id, int) and tc_id > 0:
                        self.dedup.put(tc_id, encoded)
                    self._tc_sock.sendto(encoded, addr, port)
                    continue
                tc = Telecommand(msg["tc_id"], msg["action"], msg.get("args", {}))
                if tc.action == "store":
                    # resolve the uploaded file from the gateway store
                    fname = tc.args["file"]
                    blob = self.uploads.get(fname)
                    if blob is None:
                        raise KeyError(f"no uploaded file {fname!r}")
                    tc = Telecommand(
                        tc.tc_id,
                        "store",
                        {
                            "function": tc.args["function"],
                            "version": tc.args.get("version", 1),
                            "data": blob,
                        },
                    )
                tm = self.obc.execute(tc)
                self.stats["executed"] += 1
                if p is not None:
                    p.count("executed")
                reply = {"tc_id": tm.tc_id, "success": tm.success,
                         "payload": _jsonable(tm.payload)}
            except Exception as exc:
                self.stats["rejected"] += 1
                if p is not None:
                    p.count("rejected")
                reply = {"tc_id": tc_id if isinstance(tc_id, int) else -1,
                         "success": False, "payload": {"error": str(exc)}}
            encoded = json.dumps(reply).encode()
            if isinstance(tc_id, int) and tc_id > 0:
                self.dedup.put(tc_id, encoded)
            self._tc_sock.sendto(encoded, addr, port)


def _jsonable(obj):
    """Best-effort conversion of telemetry payloads to JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, bytes):
        return obj.hex()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


class NetworkControlCenter:
    """Ground-side campaign orchestration.

    ``tc_policy`` / ``upload_policy`` bound the retransmission budgets
    of the telecommand transaction layer and the upload retry loop;
    ``rng`` (a seeded ``numpy.random.Generator``, e.g. an
    ``RngRegistry`` stream) provides deterministic backoff jitter.  The
    defaults keep nominal campaigns byte-identical to the pre-robustness
    behaviour on a clean link: one TC datagram, one upload, no waiting.
    """

    def __init__(
        self,
        node: Node,
        registry: FunctionRegistry,
        sat_address: int,
        fpga_geometry: tuple[int, int, int] = (16, 16, 64),
        tc_policy: Optional[RetryPolicy] = None,
        upload_policy: Optional[RetryPolicy] = None,
        rng=None,
        max_results: int = 1024,
    ) -> None:
        if max_results < 1:
            raise ValueError("max_results must be >= 1")
        self.node = node
        self.sim: Simulator = node.sim
        self.registry = registry
        self.sat_address = sat_address
        self.geometry = fpga_geometry
        self.rng = rng
        self.upload_policy = upload_policy or DEFAULT_UPLOAD_POLICY
        self.tc = TcTransactionClient(
            node, sat_address, policy=tc_policy, rng=rng
        )
        self._tc_id = 0
        #: bounded campaign history: soak runs issuing thousands of
        #: campaigns keep only the most recent ``max_results`` (older
        #: ones are counted in ``results_evicted``, totals stay exact)
        self.results: deque[CampaignResult] = deque(maxlen=max_results)
        self.results_evicted = 0
        self._campaigns_total = 0
        self._campaigns_ok_total = 0
        #: optional :class:`repro.robustness.dtn.ResumableUploader`
        #: (see :meth:`attach_resumable`)
        self._resumable = None

    def attach_resumable(self, uploader) -> None:
        """Route every upload through a checkpointed resumable transfer.

        ``uploader`` is a
        :class:`repro.robustness.dtn.ResumableUploader` built around
        this NCC.  Once attached, :meth:`upload` (and therefore
        :meth:`reconfigure_equipment`) segments files, checkpoints
        per-segment completion, and resumes across contact gaps instead
        of re-sending whole files -- the counterpart gateway must have a
        :class:`~repro.robustness.dtn.ResumableReceiver` attached.
        """
        self._resumable = uploader

    def _record(self, result: CampaignResult) -> None:
        if len(self.results) == self.results.maxlen:
            self.results_evicted += 1
        self.results.append(result)
        self._campaigns_total += 1
        if result.success:
            self._campaigns_ok_total += 1

    @property
    def stats(self) -> dict:
        """Ground-side campaign counters (TC transactions + outcomes).

        ``tc_issued`` counts unique telecommand ids this NCC ever sent;
        together with the gateway's ``executed`` / ``dedup_hits``
        counters it is the exactly-once oracle the scenario soak sweeps
        assert: every issued TC executes exactly once no matter how many
        retransmissions the lossy ground link forced.
        """
        out = dict(self.tc.stats)
        out["tc_issued"] = self._tc_id
        out["campaigns"] = self._campaigns_total
        out["campaigns_ok"] = self._campaigns_ok_total
        out["results_evicted"] = self.results_evicted
        return out

    # -- telecommand round trip ------------------------------------------------
    def send_telecommand(self, action: str, args: dict, deadline=None, cls=None):
        """Generator: one reliable TC transaction; returns the TM reply dict.

        The transaction layer retransmits on a sim-time timeout instead
        of blocking forever on a dropped TC or TM datagram, and raises
        :class:`~repro.robustness.RetryExhausted` once the policy budget
        is spent -- a dead link is detected at a *bounded* simulated
        time.  ``deadline`` / ``cls`` thread the overload-control
        budget and priority class down to the gateway (see
        :meth:`~repro.robustness.TcTransactionClient.request`).
        """
        self._tc_id += 1
        reply = yield from self.tc.request(
            self._tc_id, action, args, deadline=deadline, cls=cls
        )
        return reply

    # -- uploads ----------------------------------------------------------------
    def _upload_once(self, filename: str, blob: bytes, protocol: str):
        """Generator: one upload attempt with the chosen N3 protocol."""
        if protocol == "tftp":
            client = TftpClient(self.node.ip, self.sat_address)
            yield from client.write(filename, blob)
        elif protocol == "ftp":
            client = FtpClient(self.node.ip, self.sat_address)
            yield from client.put(filename, blob)
        elif protocol == "scps":
            sender = ScpsFpSender(self.node.ip, self.sat_address, rate_bps=1e6)
            yield from sender.put(filename, blob)
        else:
            raise ValueError(f"unknown protocol {protocol!r}")

    def upload(self, filename: str, blob: bytes, protocol: str, deadline=None):
        """Generator: push a file, retrying failed transfers under policy.

        ``deadline`` caps the retry loop end-to-end (no attempt starts
        after expiry; backoffs never overshoot it).
        """
        if protocol not in ("tftp", "ftp", "scps"):
            raise ValueError(f"unknown protocol {protocol!r}")
        if self._resumable is not None:
            yield from self._resumable.upload(
                filename, blob, protocol, deadline=deadline
            )
            return
        yield from run_with_retry(
            self.sim,
            lambda _attempt: self._upload_once(filename, blob, protocol),
            policy=self.upload_policy,
            rng=self.rng,
            retry_on=UPLOAD_RETRY_ON,
            name=f"upload.{protocol}",
            deadline=deadline,
        )

    # -- the full campaign ---------------------------------------------------------
    def reconfigure_equipment(
        self,
        equipment: str,
        function: str,
        protocol: str = "ftp",
        version: int = 1,
        deadline_budget: Optional[float] = None,
        priority: Optional[str] = None,
    ):
        """Generator: upload + store + reconfigure + collect telemetry.

        Returns a :class:`CampaignResult`.  Both the store-failure and
        the full-campaign result paths carry normalized telemetry (the
        ``crc`` / ``rolled_back`` / ``safe_mode`` keys are always
        present).

        ``deadline_budget`` (seconds) puts the *whole* campaign --
        upload, store, reconfigure -- under one end-to-end deadline:
        every hop checks the remaining budget and an expired campaign
        raises :class:`~repro.robustness.overload.DeadlineExceeded`
        instead of consuming further link capacity.  ``priority`` tags
        the telecommands with a class for the gateway's admission
        controller.
        """
        deadline = None
        if deadline_budget is not None:
            from ..robustness.overload.deadline import Deadline

            deadline = Deadline.after(self.sim.now, deadline_budget)
        design = self.registry.get(function)
        bitstream = design.bitstream_for(*self.geometry)
        blob = bitstream.to_bytes()
        filename = f"{function}@{version}.bit"

        t0 = self.sim.now
        yield from self.upload(filename, blob, protocol, deadline=deadline)
        t_upload = self.sim.now - t0
        if deadline is not None:
            deadline.check(self.sim.now, "campaign.store")

        t1 = self.sim.now
        reply = yield from self.send_telecommand(
            "store",
            {"file": filename, "function": function, "version": version},
            deadline=deadline,
            cls=priority,
        )
        if not reply["success"]:
            telemetry = _normalize_telemetry(reply["payload"])
            result = CampaignResult(
                function=function,
                protocol=protocol,
                upload_seconds=t_upload,
                command_seconds=self.sim.now - t1,
                success=False,
                rolled_back=bool(telemetry["rolled_back"]),
                crc=telemetry["crc"],
                telemetry=telemetry,
                safe_mode=bool(telemetry["safe_mode"]),
            )
            self._record(result)
            return result
        if deadline is not None:
            deadline.check(self.sim.now, "campaign.reconfigure")
        reply = yield from self.send_telecommand(
            "reconfigure",
            {"equipment": equipment, "function": function, "version": version},
            deadline=deadline,
            cls=priority,
        )
        t_cmd = self.sim.now - t1
        telemetry = _normalize_telemetry(reply["payload"])
        result = CampaignResult(
            function=function,
            protocol=protocol,
            upload_seconds=t_upload,
            command_seconds=t_cmd,
            success=bool(reply["success"]),
            rolled_back=bool(telemetry["rolled_back"]),
            crc=telemetry["crc"],
            telemetry=telemetry,
            safe_mode=bool(telemetry["safe_mode"]),
        )
        self._record(result)
        return result
