"""End-to-end reconfiguration campaigns (NCC -> satellite).

Ties every piece of the reproduction together: the NCC picks a design
from the registry, renders its bitstream, uploads it over the chosen
file-transfer protocol (TFTP / FTP / SCPS-FP) riding IP over the TM/TC
space link, commands the reconfiguration through a telecommand carried
on UDP, and verifies the CRC telemetry that comes back -- the complete
§3 scenario, in simulated time.

:class:`SatelliteGateway` is the space-side counterpart: it terminates
the upload protocols into the on-board bitstream library and maps the
telecommand port onto the on-board controller.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.obc import OnBoardController, Telecommand
from ..core.payload import RegenerativePayload
from ..core.registry import FunctionRegistry
from ..net import (
    FtpClient,
    FtpServer,
    ScpsFpReceiver,
    ScpsFpSender,
    TftpClient,
    TftpServer,
    UdpSocket,
)
from ..net.simnet import Node
from ..sim import Simulator

__all__ = ["NetworkControlCenter", "SatelliteGateway", "CampaignResult"]

TC_PORT = 2001


@dataclass
class CampaignResult:
    """Outcome of one upload-and-reconfigure campaign."""

    function: str
    protocol: str
    upload_seconds: float
    command_seconds: float
    success: bool
    rolled_back: bool
    crc: Optional[int]
    telemetry: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.upload_seconds + self.command_seconds


class SatelliteGateway:
    """Space-side servers: upload endpoints + telecommand port.

    Uploaded files land in a shared dict and are registered into the
    payload's bitstream library when the ``store`` TC arrives (keeping
    the upload path and the library bookkeeping separable, as §3.2 does).
    """

    def __init__(self, node: Node, payload: RegenerativePayload) -> None:
        self.node = node
        self.payload = payload
        self.obc: OnBoardController = payload.obc
        self.uploads: Dict[str, bytes] = {}
        self.tftp = TftpServer(node.ip, self.uploads)
        self.ftp = FtpServer(node.ip, self.uploads)
        self.scps = ScpsFpReceiver(node.ip, files=self.uploads)
        self._tc_sock = UdpSocket(node.ip, TC_PORT)
        node.sim.process(self._tc_server(), name="sat-tc-server")

    def _tc_server(self):
        while True:
            data, (addr, port) = yield self._tc_sock.recv()
            try:
                msg = json.loads(data.decode())
                tc = Telecommand(msg["tc_id"], msg["action"], msg.get("args", {}))
                if tc.action == "store":
                    # resolve the uploaded file from the gateway store
                    fname = tc.args["file"]
                    blob = self.uploads.get(fname)
                    if blob is None:
                        raise KeyError(f"no uploaded file {fname!r}")
                    tc = Telecommand(
                        tc.tc_id,
                        "store",
                        {
                            "function": tc.args["function"],
                            "version": tc.args.get("version", 1),
                            "data": blob,
                        },
                    )
                tm = self.obc.execute(tc)
                reply = {"tc_id": tm.tc_id, "success": tm.success,
                         "payload": _jsonable(tm.payload)}
            except Exception as exc:
                reply = {"tc_id": msg.get("tc_id", -1) if isinstance(msg, dict) else -1,
                         "success": False, "payload": {"error": str(exc)}}
            self._tc_sock.sendto(json.dumps(reply).encode(), addr, port)


def _jsonable(obj):
    """Best-effort conversion of telemetry payloads to JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, bytes):
        return obj.hex()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


class NetworkControlCenter:
    """Ground-side campaign orchestration."""

    def __init__(
        self,
        node: Node,
        registry: FunctionRegistry,
        sat_address: int,
        fpga_geometry: tuple[int, int, int] = (16, 16, 64),
    ) -> None:
        self.node = node
        self.sim: Simulator = node.sim
        self.registry = registry
        self.sat_address = sat_address
        self.geometry = fpga_geometry
        self._tc_id = 0
        self.results: list[CampaignResult] = []

    # -- telecommand round trip ------------------------------------------------
    def send_telecommand(self, action: str, args: dict):
        """Generator: send a TC over UDP and return the TM reply dict."""
        self._tc_id += 1
        sock = UdpSocket(self.node.ip)
        try:
            msg = {"tc_id": self._tc_id, "action": action, "args": args}
            sock.sendto(json.dumps(msg).encode(), self.sat_address, TC_PORT)
            data, _src = yield sock.recv()
            return json.loads(data.decode())
        finally:
            sock.close()

    # -- uploads ----------------------------------------------------------------
    def upload(self, filename: str, blob: bytes, protocol: str):
        """Generator: push a file with the chosen N3 protocol."""
        if protocol == "tftp":
            client = TftpClient(self.node.ip, self.sat_address)
            yield from client.write(filename, blob)
        elif protocol == "ftp":
            client = FtpClient(self.node.ip, self.sat_address)
            yield from client.put(filename, blob)
        elif protocol == "scps":
            sender = ScpsFpSender(self.node.ip, self.sat_address, rate_bps=1e6)
            yield from sender.put(filename, blob)
        else:
            raise ValueError(f"unknown protocol {protocol!r}")

    # -- the full campaign ---------------------------------------------------------
    def reconfigure_equipment(
        self,
        equipment: str,
        function: str,
        protocol: str = "ftp",
        version: int = 1,
    ):
        """Generator: upload + store + reconfigure + collect telemetry.

        Returns a :class:`CampaignResult`.
        """
        design = self.registry.get(function)
        bitstream = design.bitstream_for(*self.geometry)
        blob = bitstream.to_bytes()
        filename = f"{function}@{version}.bit"

        t0 = self.sim.now
        yield from self.upload(filename, blob, protocol)
        t_upload = self.sim.now - t0

        t1 = self.sim.now
        reply = yield from self.send_telecommand(
            "store", {"file": filename, "function": function, "version": version}
        )
        if not reply["success"]:
            result = CampaignResult(
                function, protocol, t_upload, self.sim.now - t1,
                False, False, None, reply["payload"],
            )
            self.results.append(result)
            return result
        reply = yield from self.send_telecommand(
            "reconfigure",
            {"equipment": equipment, "function": function, "version": version},
        )
        t_cmd = self.sim.now - t1
        payload = reply["payload"]
        result = CampaignResult(
            function=function,
            protocol=protocol,
            upload_seconds=t_upload,
            command_seconds=t_cmd,
            success=bool(reply["success"]),
            rolled_back=bool(payload.get("rolled_back", False)),
            crc=payload.get("crc"),
            telemetry=payload,
        )
        self.results.append(result)
        return result
