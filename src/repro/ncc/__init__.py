"""Ground segment: the Network Control Center (NCC).

The NCC drives reconfiguration campaigns over the Fig. 4 stack: it
uploads bitstream files (TFTP / FTP / SCPS-FP over IP over the TM/TC
link), issues the reconfiguration telecommands, monitors the CRC
telemetry and distributes reconfiguration policies via COPS.
"""

from .campaign import (
    BoundedUploadStore,
    CampaignResult,
    NetworkControlCenter,
    SatelliteGateway,
)
from .policy import PolicyDrivenSatellite, ReconfigurationPolicyServer
from .traffic import MissionPlanner, PlannedChange, ServiceMix, TrafficModel

__all__ = [
    "BoundedUploadStore",
    "CampaignResult",
    "MissionPlanner",
    "NetworkControlCenter",
    "PlannedChange",
    "PolicyDrivenSatellite",
    "ReconfigurationPolicyServer",
    "SatelliteGateway",
    "ServiceMix",
    "TrafficModel",
]
