"""COPS-driven reconfiguration policies (paper §3.3).

"Another set-up protocol appears very interesting: COPS.  It may be
employed to send reconfiguration policies (transmitted at the client or
at the server initiative)."

:class:`PolicyDrivenSatellite` runs the satellite-side PEP: it connects
to the NCC's PDP, asks for (or receives pushed) reconfiguration
decisions, enforces them through the on-board controller, and reports
the outcome.  :class:`ReconfigurationPolicyServer` is the NCC-side PDP
whose policy table maps request contexts to decisions.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.obc import OnBoardController, Telecommand
from ..net import CopsClient, CopsServer, Decision, Report, Request
from ..net.simnet import Node
from ..sim import Simulator

__all__ = ["ReconfigurationPolicyServer", "PolicyDrivenSatellite"]


class ReconfigurationPolicyServer:
    """The NCC PDP: decides which personality each equipment should run.

    The policy table maps ``(equipment, trigger)`` to a function name;
    a request whose context matches gets a load decision, others get an
    empty (no-op) decision.
    """

    def __init__(self, node: Node, port: int = 3288) -> None:
        self.table: Dict[tuple[str, str], str] = {}
        self.decisions_issued = 0
        self.reports: list[Report] = []
        self.server = CopsServer(node.ip, self._decide, port=port)
        node.sim.process(self._collect_reports(), name="pdp-reports")

    def set_policy(self, equipment: str, trigger: str, function: str) -> None:
        """Install one policy row."""
        self.table[(equipment, trigger)] = function

    def _decide(self, req: Request) -> Decision:
        equipment = req.context.get("equipment", "")
        trigger = req.context.get("trigger", "")
        function = self.table.get((equipment, trigger))
        if function is None:
            return Decision(handle=req.handle, directives={})
        self.decisions_issued += 1
        return Decision(
            handle=req.handle,
            directives={"action": "reconfigure", "equipment": equipment,
                        "function": function},
        )

    def install_fdir_fallbacks(
        self, equipment: str, fallbacks: Dict[str, str]
    ) -> int:
        """Authorise on-board FDIR fallbacks as ground policy rows.

        ``fallbacks`` maps a primary function name to the more robust
        personality the FDIR arbiter may load in its place (the shape of
        :data:`repro.robustness.fdir.DEFAULT_FALLBACKS`).  Each pair
        becomes a ``(equipment, "fallback:<primary>")`` policy row, so a
        satellite PEP pulling with that trigger receives the same
        decision the autonomous ladder would take -- the ground and the
        board agree on the degraded personality by construction.
        Returns the number of rows installed.
        """
        for primary, fallback in fallbacks.items():
            self.set_policy(equipment, f"fallback:{primary}", fallback)
        return len(fallbacks)

    def push(self, sat_address: int, equipment: str, function: str) -> None:
        """Server-initiative decision (unsolicited)."""
        self.decisions_issued += 1
        self.server.push_decision(
            sat_address,
            Decision(
                handle=0,
                directives={"action": "reconfigure", "equipment": equipment,
                            "function": function},
            ),
        )

    def _collect_reports(self):
        while True:
            rpt = yield self.server.reports.get()
            self.reports.append(rpt)


class PolicyDrivenSatellite:
    """The satellite PEP: enforces reconfiguration decisions on the OBC.

    Call :meth:`start` (a generator) inside a sim process; then either
    :meth:`request_policy` for client-initiative pulls, or let pushed
    decisions be enforced automatically by the background watcher.
    """

    def __init__(
        self,
        node: Node,
        obc: OnBoardController,
        pdp_address: int,
        local_port: int = 47101,
    ) -> None:
        self.sim: Simulator = node.sim
        self.obc = obc
        self.client = CopsClient(node.ip, pdp_address, local_port=local_port)
        self._handle = 0
        self.enforced: list[dict] = []

    def start(self):
        """Generator: open the COPS session and watch for pushes."""
        yield from self.client.open()
        self.sim.process(self._watch_pushes(), name="pep-watch")

    def _next_handle(self) -> int:
        self._handle += 1
        return self._handle

    def _enforce(self, decision: Decision) -> Report:
        directives = decision.directives
        if directives.get("action") != "reconfigure":
            return Report(decision.handle, True, {"noop": True})
        tc = Telecommand(
            self._next_handle(),
            "reconfigure",
            {"equipment": directives["equipment"],
             "function": directives["function"]},
        )
        tm = self.obc.execute(tc)
        outcome = {
            "equipment": directives["equipment"],
            "function": directives["function"],
            "success": tm.success,
        }
        self.enforced.append(outcome)
        return Report(decision.handle, tm.success, outcome)

    def request_policy(self, equipment: str, trigger: str):
        """Generator: client-initiative REQ -> enforce -> RPT."""
        req = Request(
            handle=self._next_handle(),
            context={"equipment": equipment, "trigger": trigger},
        )
        decision = yield from self.client.request(req)
        report = self._enforce(decision)
        self.client.report(report)
        return report

    def _watch_pushes(self):
        while True:
            decision = yield self.client.decisions.get()
            report = self._enforce(decision)
            self.client.report(report)
