"""Traffic-evolution workload: the paper's motivation, made executable.

From the introduction: "The global trend observed is the introduction
of new data services while mobile communication prior service was
voice.  In a few years, voice traffic should represent less than 20 %
of the global traffic.  New data applications were first text data
(SMS) and are/will be slowly replaced by video data.  Thus the required
bandwidth ... increases rapidly."

:class:`TrafficModel` generates that service-mix evolution over a
satellite's mission years; :class:`MissionPlanner` turns it into the
reconfiguration schedule a software-radio payload would execute (and an
ASIC payload could not) -- used by the mission-lifetime example and the
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ServiceMix", "TrafficModel", "MissionPlanner", "PlannedChange"]


@dataclass(frozen=True)
class ServiceMix:
    """Traffic composition at one mission epoch (fractions sum to 1)."""

    year: float
    voice: float
    text: float
    video: float
    total_mbps: float

    def __post_init__(self) -> None:
        # eager validation: a bad mix must fail where it is built, not
        # deep inside a planner or admission controller that trusted it
        for name in ("voice", "text", "video"):
            f = getattr(self, name)
            if not 0.0 <= f <= 1.0:
                raise ValueError(f"{name} fraction must be in [0, 1], got {f}")
        s = self.voice + self.text + self.video
        if not np.isclose(s, 1.0, atol=1e-6):
            raise ValueError(f"service fractions must sum to 1, got {s}")
        if self.total_mbps < 0:
            raise ValueError(f"total_mbps must be >= 0, got {self.total_mbps}")
        if self.year < 0:
            raise ValueError(f"year must be >= 0, got {self.year}")


class TrafficModel:
    """Deterministic service-mix evolution over mission years.

    Voice decays logistically toward a floor (the paper: "< 20 %" after
    a few years -- default floor 10 %), text peaks early then yields to
    video, and total demand grows exponentially.
    """

    def __init__(
        self,
        launch_total_mbps: float = 2.0,
        growth_per_year: float = 0.45,
        voice_initial: float = 0.8,
        voice_floor: float = 0.10,
        voice_decay_years: float = 3.0,
    ) -> None:
        if launch_total_mbps <= 0 or growth_per_year < 0:
            raise ValueError("invalid demand parameters")
        if not 0 <= voice_floor < voice_initial <= 1:
            raise ValueError("invalid voice fractions")
        self.launch_total = launch_total_mbps
        self.growth = growth_per_year
        self.v0 = voice_initial
        self.vf = voice_floor
        self.tau = voice_decay_years

    def mix_at(self, year: float) -> ServiceMix:
        """Service mix at a mission year."""
        if year < 0:
            raise ValueError("year must be >= 0")
        voice = self.vf + (self.v0 - self.vf) * float(np.exp(-year / self.tau))
        data = 1.0 - voice
        # text share of data peaks early, video takes over
        text_share = float(np.exp(-year / 2.5))
        text = data * text_share
        video = data * (1.0 - text_share)
        total = self.launch_total * float((1.0 + self.growth) ** year)
        return ServiceMix(year=year, voice=voice, text=text, video=video, total_mbps=total)

    def years_until_voice_below(self, fraction: float) -> float:
        """Mission year when voice drops under ``fraction`` of traffic.

        A fraction the launch mix is *already* below answers 0.0 (the
        condition holds from year zero); only a fraction at or below
        the asymptotic floor -- which the decay never reaches -- is an
        error.
        """
        if fraction >= self.v0:
            return 0.0
        if fraction <= self.vf:
            raise ValueError(
                f"voice never drops below its floor ({self.vf}); "
                f"asked for {fraction}"
            )
        return float(-self.tau * np.log((fraction - self.vf) / (self.v0 - self.vf)))


@dataclass(frozen=True)
class PlannedChange:
    """One reconfiguration the mission plan calls for."""

    year: float
    equipment: str
    function: str
    reason: str


class MissionPlanner:
    """Derives the reconfiguration schedule from the traffic forecast.

    Two paper-driven rules:

    - when per-user demand exceeds the CDMA mode's ceiling (384 kbps),
      re-point the waveform to TDMA (§2.3's access-scheme change);
    - as total demand (and therefore operating Eb/N0 per bit) tightens,
      step the decoder personality up: none -> convolutional -> turbo
      (§2.3's coding change).
    """

    CDMA_CEILING_MBPS = 0.384

    def __init__(self, model: TrafficModel, mission_years: float = 15.0) -> None:
        if mission_years <= 0:
            raise ValueError("mission_years must be positive")
        self.model = model
        self.mission_years = mission_years

    #: peak-to-mean factor of a busy user's rate demand
    PEAK_FACTOR = 10.0

    def per_user_demand(self, year: float, users: int = 100) -> float:
        """Peak per-user rate demanded (Mbps), video-weighted."""
        if users < 1:
            raise ValueError("users must be >= 1")
        mix = self.model.mix_at(year)
        # video traffic dominates the per-user peak requirement
        weight = 0.2 + 0.8 * mix.video
        return mix.total_mbps * weight * self.PEAK_FACTOR / users

    def schedule(self, users: int = 100) -> list[PlannedChange]:
        """The mission's reconfiguration plan (yearly granularity).

        Epochs are the whole mission years plus, for a fractional
        mission length (say 7.5 years), the end-of-mission boundary
        itself -- a demand threshold crossed in the final half year
        used to be silently missed.
        """
        epochs = [float(y) for y in range(int(self.mission_years) + 1)]
        if self.mission_years > epochs[-1]:
            epochs.append(float(self.mission_years))
        changes: list[PlannedChange] = []
        waveform = "modem.cdma"
        decoder = "decod.none"
        for year in epochs:
            demand = self.per_user_demand(year, users)
            mix = self.model.mix_at(year)
            if waveform == "modem.cdma" and demand > self.CDMA_CEILING_MBPS:
                waveform = "modem.tdma"
                changes.append(PlannedChange(
                    float(year), "demod*", "modem.tdma",
                    f"per-user demand {demand:.2f} Mbps exceeds CDMA ceiling",
                ))
            if decoder == "decod.none" and mix.video > 0.25:
                decoder = "decod.conv"
                changes.append(PlannedChange(
                    float(year), "decod0", "decod.conv",
                    f"video at {mix.video:.0%} needs coded QoS",
                ))
            elif decoder == "decod.conv" and mix.video > 0.6:
                decoder = "decod.turbo"
                changes.append(PlannedChange(
                    float(year), "decod0", "decod.turbo",
                    f"video at {mix.video:.0%} needs turbo-grade QoS",
                ))
        return changes
