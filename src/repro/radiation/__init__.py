"""Space radiation environment substrate (paper §4.2).

Models the three radiation sources the paper describes -- trapped
particle belts, galactic cosmic rays and solar flares -- and their two
effect classes on CMOS devices: **Total Ionizing Dose** (TID, long-term
degradation in krad) and **Single-Event Effects** (SEE/SEU, random bit
upsets).  The numbers are anchored to the paper's Table 1: a GEO
satellite sees about 1e-7 SEU per bit per day on the MH1RT process and
accumulates dose against a 200 krad tolerance.
"""

from .environment import (
    GEO,
    LEO,
    MEO,
    Orbit,
    RadiationEnvironment,
    SolarActivity,
)
from .effects import LatchUpModel, SeuProcess, TidAccumulator

__all__ = [
    "GEO",
    "LEO",
    "LatchUpModel",
    "MEO",
    "Orbit",
    "RadiationEnvironment",
    "SeuProcess",
    "SolarActivity",
    "TidAccumulator",
]
