"""Orbit and radiation-source models.

The paper (§4.2) lists three phenomena:

- planetary magnetic fields trap proton/electron belts (dominant dose
  source for orbits crossing the belts);
- galactic cosmic rays (rare but highly ionizing -- the dominant SEU
  source at GEO);
- solar flares (episodic flux enhancements over hours to days).

The model combines per-source SEU-rate and dose-rate contributions into
an environment whose headline output -- SEU/bit/day at GEO for the
MH1RT-class process -- matches the paper's Table 1 (1e-7).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Orbit", "SolarActivity", "RadiationEnvironment", "GEO", "LEO", "MEO"]


class SolarActivity(str, Enum):
    """Solar-cycle condition; flares dominate at MAX."""

    QUIET = "quiet"
    NOMINAL = "nominal"
    MAX = "max"


@dataclass(frozen=True)
class Orbit:
    """Orbit-dependent exposure factors (relative to the GEO baseline).

    ``belt_exposure`` scales the trapped-belt contribution (GEO sits at
    the outer edge of the electron belt; LEO under the belts except for
    the South Atlantic Anomaly; MEO deep inside the proton belt).
    ``gcr_exposure`` scales galactic-cosmic-ray flux (geomagnetic
    shielding reduces it at low altitude).
    """

    name: str
    altitude_km: float
    belt_exposure: float
    gcr_exposure: float
    flare_exposure: float


#: Geostationary orbit -- the paper's reference case (three GEO satellites
#: cover the earth, §2.1).
GEO = Orbit("GEO", 35_786.0, belt_exposure=1.0, gcr_exposure=1.0, flare_exposure=1.0)
#: Low earth orbit: shielded from GCR/flares, grazes the belts (SAA).
LEO = Orbit("LEO", 550.0, belt_exposure=0.35, gcr_exposure=0.3, flare_exposure=0.15)
#: Medium earth orbit: deep in the proton belt.
MEO = Orbit("MEO", 20_200.0, belt_exposure=4.0, gcr_exposure=0.9, flare_exposure=0.8)

# Per-source GEO-baseline rates for an MH1RT-class (0.35 um rad-hard) process.
# They sum to the paper's Table 1 figure of 1e-7 SEU/bit/day at GEO nominal.
_SEU_BELT = 1.5e-8  # trapped protons
_SEU_GCR = 7.0e-8  # cosmic rays: dominant at GEO, per paper §4.2
_SEU_FLARE_NOMINAL = 1.5e-8  # averaged flare contribution

# Dose rates in krad/year against the 200 krad Table-1 tolerance
# (GEO behind nominal spacecraft shielding accumulates a few krad/yr).
_DOSE_BELT = 2.0  # krad/year
_DOSE_GCR = 0.3
_DOSE_FLARE_NOMINAL = 0.7

_FLARE_SCALE = {
    SolarActivity.QUIET: 0.1,
    SolarActivity.NOMINAL: 1.0,
    SolarActivity.MAX: 20.0,
}
# Trapped-belt fluxes also breathe with the solar cycle (mildly).
_BELT_SCALE = {
    SolarActivity.QUIET: 0.8,
    SolarActivity.NOMINAL: 1.0,
    SolarActivity.MAX: 1.5,
}


@dataclass(frozen=True)
class RadiationEnvironment:
    """Combined radiation environment for an orbit and solar condition.

    ``device_seu_factor`` rescales the SEU susceptibility for a different
    process (e.g. a commercial SRAM FPGA is typically 10-100x softer than
    the rad-hard ASIC baseline).
    """

    orbit: Orbit = GEO
    activity: SolarActivity = SolarActivity.NOMINAL
    device_seu_factor: float = 1.0

    def seu_rate_per_bit_day(self) -> float:
        """Upsets per configuration/memory bit per day."""
        flare = _SEU_FLARE_NOMINAL * _FLARE_SCALE[self.activity]
        belt = _SEU_BELT * _BELT_SCALE[self.activity]
        rate = (
            belt * self.orbit.belt_exposure
            + _SEU_GCR * self.orbit.gcr_exposure
            + flare * self.orbit.flare_exposure
        )
        return rate * self.device_seu_factor

    def seu_rate_per_bit_second(self) -> float:
        """Upsets per bit per second (for event-driven simulation)."""
        return self.seu_rate_per_bit_day() / 86_400.0

    def dose_rate_krad_year(self) -> float:
        """Accumulated ionizing dose rate behind nominal shielding."""
        flare = _DOSE_FLARE_NOMINAL * _FLARE_SCALE[self.activity]
        belt = _DOSE_BELT * _BELT_SCALE[self.activity]
        return (
            belt * self.orbit.belt_exposure
            + _DOSE_GCR * self.orbit.gcr_exposure
            + flare * self.orbit.flare_exposure
        )

    def expected_upsets(self, bits: int, seconds: float) -> float:
        """Mean number of upsets in ``bits`` of memory over ``seconds``."""
        if bits < 0 or seconds < 0:
            raise ValueError("bits and seconds must be >= 0")
        return bits * self.seu_rate_per_bit_second() * seconds
