"""Radiation effects: SEU arrival process and TID accumulation.

Two effect classes from the paper (§4.2):

- **SEU** -- a short, localized charge deposit flips a memory/logic
  state; modeled as a Poisson process over the device's bit population.
  "To suppress a SEU it is mandatory to reinitialize the logical device
  or to rewrite memory" -- which is exactly what the scrubbing engines
  in :mod:`repro.fpga.mitigation` do.
- **TID** -- cumulative dose shifts thresholds until the device degrades
  permanently; modeled as a krad budget against the device tolerance
  with a soft degradation onset.
"""

from __future__ import annotations

import numpy as np

from .environment import RadiationEnvironment

__all__ = ["SeuProcess", "TidAccumulator", "LatchUpModel"]


class SeuProcess:
    """Poisson SEU arrival process over a population of bits.

    Draws the number of upsets in a time window and the bit positions
    hit.  Positions are uniform over the population -- the standard
    assumption for configuration memory.
    """

    def __init__(
        self,
        env: RadiationEnvironment,
        num_bits: int,
        rng: np.random.Generator,
    ) -> None:
        if num_bits < 1:
            raise ValueError("num_bits must be >= 1")
        self.env = env
        self.num_bits = num_bits
        self.rng = rng
        self.total_upsets = 0

    def upsets_in(self, seconds: float) -> np.ndarray:
        """Bit indices upset during a window of ``seconds`` (may repeat).

        The count is Poisson with mean ``num_bits * rate * seconds``.
        """
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        lam = self.env.expected_upsets(self.num_bits, seconds)
        n = int(self.rng.poisson(lam))
        self.total_upsets += n
        return self.rng.integers(0, self.num_bits, size=n)

    def time_to_next_upset(self) -> float:
        """Exponential waiting time (seconds) to the next upset anywhere."""
        rate = self.num_bits * self.env.seu_rate_per_bit_second()
        if rate <= 0:
            return float("inf")
        return float(self.rng.exponential(1.0 / rate))


class TidAccumulator:
    """Total-ionizing-dose bookkeeping against a device tolerance.

    The device is *nominal* below ``degradation_onset`` (default 80 % of
    tolerance), *degraded* between onset and tolerance, *failed* above
    tolerance -- the standard derating treatment of Table-1 style TID
    ratings.
    """

    def __init__(self, tolerance_krad: float, degradation_onset: float = 0.8):
        if tolerance_krad <= 0:
            raise ValueError("tolerance must be positive")
        if not 0.0 < degradation_onset <= 1.0:
            raise ValueError("degradation_onset must be in (0, 1]")
        self.tolerance_krad = tolerance_krad
        self.onset_krad = tolerance_krad * degradation_onset
        self.dose_krad = 0.0

    def accumulate(self, env: RadiationEnvironment, years: float) -> None:
        """Add the dose collected over ``years`` in ``env``."""
        if years < 0:
            raise ValueError("years must be >= 0")
        self.dose_krad += env.dose_rate_krad_year() * years

    @property
    def state(self) -> str:
        """``"nominal"``, ``"degraded"`` or ``"failed"``."""
        if self.dose_krad >= self.tolerance_krad:
            return "failed"
        if self.dose_krad >= self.onset_krad:
            return "degraded"
        return "nominal"

    def lifetime_years(self, env: RadiationEnvironment) -> float:
        """Years until the tolerance is consumed at the env's dose rate."""
        rate = env.dose_rate_krad_year()
        if rate <= 0:
            return float("inf")
        return (self.tolerance_krad - self.dose_krad) / rate


class LatchUpModel:
    """Single-event latch-up (§4.2: "latch-up, burnout ... more
    difficult to recover from or impossible").

    Latch-up events arrive as a (rare) Poisson process per device.  An
    unprotected device is destroyed by its first event; a device behind
    a current-limiting/power-cycling protection circuit survives but
    takes a recovery outage per event.
    """

    def __init__(
        self,
        rate_per_device_day: float = 1e-4,
        protected: bool = True,
        recovery_seconds: float = 10.0,
    ) -> None:
        if rate_per_device_day < 0 or recovery_seconds < 0:
            raise ValueError("rate and recovery must be >= 0")
        self.rate = rate_per_device_day
        self.protected = protected
        self.recovery_seconds = recovery_seconds
        self.events = 0
        self.destroyed = False
        self.outage_seconds = 0.0

    def advance(self, days: float, rng: np.random.Generator) -> int:
        """Simulate ``days`` of exposure; returns latch-up event count."""
        if days < 0:
            raise ValueError("days must be >= 0")
        if self.destroyed:
            return 0
        n = int(rng.poisson(self.rate * days))
        self.events += n
        if n and not self.protected:
            self.destroyed = True
        elif n:
            self.outage_seconds += n * self.recovery_seconds
        return n

    def survival_probability(self, days: float) -> float:
        """P(no destructive event) over a mission -- 1.0 when protected."""
        if self.protected:
            return 1.0
        return float(np.exp(-self.rate * days))
