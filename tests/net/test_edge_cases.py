"""Edge-case coverage for the network stack."""

import numpy as np
import pytest

from repro.net import (
    IpPacket,
    Link,
    Node,
    ScpsFpReceiver,
    ScpsFpSender,
    TcpConnection,
    TcpListener,
    UdpSocket,
)
from repro.sim import Simulator


def pair():
    sim = Simulator()
    a = Node(sim, "a", 1)
    b = Node(sim, "b", 2)
    link = Link(sim, delay=0.05, rate_bps=1e6)
    link.attach(a)
    link.attach(b)
    return sim, a, b


class TestIpEdges:
    def test_unregistered_protocol_dropped_quietly(self):
        sim, a, b = pair()
        a.ip.send(2, 123, b"orphan")
        sim.run()  # no handler for proto 123: nothing to assert but no crash
        assert b.ip.stats["received"] == 1

    def test_empty_payload_datagram(self):
        sim, a, b = pair()
        got = []
        b.ip.register_protocol(99, lambda pkt: got.append(pkt.payload))
        a.ip.send(2, 99, b"")
        sim.run()
        assert got == [b""]

    def test_unaligned_fragment_offset_rejected(self):
        pkt = IpPacket(1, 2, 17, 1, b"x", offset=5)
        with pytest.raises(ValueError):
            pkt.encode()

    def test_send_frame_without_link(self):
        sim = Simulator()
        orphan = Node(sim, "orphan", 9)
        with pytest.raises(RuntimeError):
            orphan.send_frame(b"x")


class TestScpsEdges:
    def test_empty_file_transfer(self):
        sim, a, b = pair()
        store = {}
        ScpsFpReceiver(b.ip, files=store)
        done = {}

        def cli(sim):
            s = ScpsFpSender(a.ip, 2)
            done["rounds"] = yield from s.put("empty", b"")

        sim.process(cli(sim))
        sim.run(until=60)
        assert store.get("empty") == b""
        assert done["rounds"] == 0

    def test_back_to_back_files(self):
        sim, a, b = pair()
        store = {}
        ScpsFpReceiver(b.ip, files=store)

        def cli(sim):
            s = ScpsFpSender(a.ip, 2)
            yield from s.put("one", b"1" * 3000)
            yield from s.put("two", b"2" * 3000)

        sim.process(cli(sim))
        sim.run(until=120)
        assert store.get("one") == b"1" * 3000
        assert store.get("two") == b"2" * 3000


class TestTcpEdges:
    def test_listener_window_propagates_to_connections(self):
        sim, a, b = pair()
        lst = TcpListener(b.ip, 80, window=200_000)
        accepted = {}

        def srv(sim):
            conn = yield lst.accept()
            accepted["window"] = conn.window

        def cli(sim):
            conn = TcpConnection(a.ip, 40001, 2, 80)
            yield conn.connect()

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=30)
        assert accepted["window"] == 200_000

    def test_zero_byte_send_is_noop(self):
        sim, a, b = pair()
        TcpListener(b.ip, 80)
        results = {}

        def cli(sim):
            conn = TcpConnection(a.ip, 40002, 2, 80)
            yield conn.connect()
            conn.send(b"")
            conn.close()
            yield conn.wait_closed()
            results["done"] = True

        sim.process(cli(sim))
        sim.run(until=60)
        assert results.get("done")


class TestUdpEdges:
    def test_large_datagram_fragments_under_udp(self):
        sim, a, b = pair()
        got = {}

        def srv(sim):
            s = UdpSocket(b.ip, 700)
            data, _src = yield s.recv()
            got["data"] = data

        def cli(sim):
            s = UdpSocket(a.ip)
            s.sendto(bytes(range(256)) * 20, 2, 700)  # 5 kB > MTU
            yield sim.timeout(0)

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=30)
        assert got.get("data") == bytes(range(256)) * 20
