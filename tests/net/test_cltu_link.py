"""Tests for the CLTU-protected TM/TC channel over a bit-flipping link."""

import pytest

from repro.net import Link, Node
from repro.net.tmtc import TmtcLayer
from repro.sim import RngRegistry, Simulator


def pair(ber=0.0, seed=0, error_mode="drop", cltu=False):
    sim = Simulator()
    a = Node(sim, "ncc", 1)
    b = Node(sim, "sat", 2)
    rng = RngRegistry(seed).stream("link") if ber else None
    link = Link(sim, delay=0.1, rate_bps=1e6, ber=ber, rng=rng,
                error_mode=error_mode)
    link.attach(a)
    link.attach(b)
    ta = TmtcLayer(a, cltu=cltu, rto=0.5)
    tb = TmtcLayer(b, cltu=cltu, rto=0.5)
    return sim, ta, tb, link


class TestFlipMode:
    def test_flip_mode_delivers_corrupted_frames(self):
        sim, ta, tb, link = pair(ber=1e-3, seed=1, error_mode="flip")
        got = []
        tb.register_handler(0, got.append)
        for _ in range(20):
            ta.send_sdu(bytes(200), vc=0, mode="BD")
        sim.run(until=60)
        # frames arrive but most fail the frame CRC (counted, not lost silently)
        assert tb.stats["bad_frames"] > 0
        assert link.stats.get("flipped_bits", 0) > 0

    def test_error_mode_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, error_mode="mangle")


class TestCltuChannel:
    def test_cltu_clean_link_transparent(self):
        sim, ta, tb, _ = pair(cltu=True)
        got = []
        tb.register_handler(0, got.append)
        sdu = bytes(range(256)) * 3
        ta.send_sdu(sdu, vc=0, mode="AD")
        sim.run(until=60)
        assert got == [sdu]
        assert tb.cltu_corrections == 0

    def test_cltu_corrects_bit_errors(self):
        """The channel service's error control: at a BER where bare
        frames mostly die, BCH-coded frames get through corrected."""
        # bare frames on a flipping link
        sim1, ta1, tb1, _ = pair(ber=3e-4, seed=2, error_mode="flip", cltu=False)
        bare = []
        tb1.register_handler(0, bare.append)
        sdu = bytes(range(200))
        for _ in range(10):
            ta1.send_sdu(sdu, vc=0, mode="BD")
        sim1.run(until=60)

        sim2, ta2, tb2, _ = pair(ber=3e-4, seed=2, error_mode="flip", cltu=True)
        coded = []
        tb2.register_handler(0, coded.append)
        for _ in range(10):
            ta2.send_sdu(sdu, vc=0, mode="BD")
        sim2.run(until=60)

        assert len(coded) > len(bare)
        assert tb2.cltu_corrections > 0
        assert all(c == sdu for c in coded)

    def test_cltu_with_controlled_mode_full_reliability(self):
        """CLTU + AD retransmission: reliable even on a noisy uplink."""
        sim, ta, tb, _ = pair(ber=4e-4, seed=3, error_mode="flip", cltu=True)
        got = []
        tb.register_handler(1, got.append)
        sdu = bytes(range(256)) * 6
        ta.send_sdu(sdu, vc=1, mode="AD")
        sim.run(until=240)
        assert got == [sdu]
