"""Dead-link behaviour of the transport and transfer protocols.

A hard-down link (``link.set_up(False)``) is not a lossy link: nothing
gets through, in either direction, for minutes.  Every client must
detect that at a *bounded* simulated time -- capped exponential backoff
ending in a link-down error -- instead of retrying forever, and every
server must hold its side of a half-finished transfer long enough for
the resumable layer to repair it at the next pass.
"""

import pytest

from repro.net import Link, Node, TcpConnection, TcpListener
from repro.net.scps import ScpsError, ScpsFpReceiver, ScpsFpSender
from repro.net.tcp import TcpLinkDown
from repro.net.tftp import TftpClient, TftpError, TftpServer
from repro.sim import Simulator

pytestmark = pytest.mark.dtn


def pair(rate=1e6, delay=0.25):
    sim = Simulator()
    a = Node(sim, "gs", 1)
    b = Node(sim, "sat", 2)
    link = Link(sim, delay=delay, rate_bps=rate)
    link.attach(a)
    link.attach(b)
    return sim, a, b, link


class TestTcpDeadLink:
    def test_connect_into_dead_link_raises_bounded(self):
        """A SYN into a dead link fails with TcpLinkDown, not a hang."""
        sim, a, b, link = pair()
        link.set_up(False)
        outcome = {}

        def cli(sim):
            conn = TcpConnection(a.ip, 41000, 2, 80)
            try:
                yield conn.connect()
                outcome["result"] = "connected"
            except TcpLinkDown:
                outcome["result"] = "link_down"
                outcome["t"] = sim.now

        sim.process(cli(sim))
        sim.run(until=1000.0)
        assert outcome["result"] == "link_down"
        # 1.5 + 3 + 6 + 12 + 24 + 30*4 (capped) ~ 166.5 s of backoff
        assert outcome["t"] < 250.0

    def test_established_sender_declares_down_and_recv_gets_eof(self):
        """Unacked data over a dead link ends in link_down + EOF locally."""
        sim, a, b, link = pair()
        outcome = {}

        def srv(sim):
            lst = TcpListener(b.ip, 80)
            conn = yield lst.accept()
            yield conn.recv()  # the pre-outage exchange

        def cli(sim):
            conn = TcpConnection(a.ip, 41001, 2, 80)
            yield conn.connect()
            conn.send(b"pre-outage")
            yield sim.timeout(5.0)
            link.set_up(False)
            conn.send(b"x" * 4000)  # never acknowledged
            got = yield conn.recv()
            outcome["eof"] = got is None
            outcome["t"] = sim.now
            outcome["stats"] = dict(conn.stats)

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=1000.0)
        assert outcome["eof"] is True
        assert outcome["stats"]["link_down"] == 1
        # capped exponential backoff bounds detection time
        assert outcome["t"] < 250.0

    def test_short_outage_recovers_without_link_down(self):
        """An outage shorter than the retransmission budget just heals."""
        sim, a, b, link = pair()
        outcome = {}
        payload = b"y" * 3000

        def srv(sim):
            lst = TcpListener(b.ip, 80)
            conn = yield lst.accept()
            buf = bytearray()
            while len(buf) < len(payload):
                chunk = yield conn.recv()
                if chunk is None:
                    break
                buf.extend(chunk)
            outcome["received"] = bytes(buf)

        def cli(sim):
            conn = TcpConnection(a.ip, 41002, 2, 80)
            yield conn.connect()
            yield sim.timeout(1.0)
            link.set_up(False)
            conn.send(payload)
            yield sim.timeout(10.0)
            link.set_up(True)
            yield sim.timeout(60.0)
            outcome["stats"] = dict(conn.stats)

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=200.0)
        assert outcome["received"] == payload
        assert outcome["stats"]["link_down"] == 0


class TestScpsDeadLink:
    def test_put_into_dead_link_raises_link_down(self):
        """Silent EOF probes back off exponentially, then declare down."""
        sim, a, b, link = pair()
        ScpsFpReceiver(b.ip)
        outcome = {}

        def cli(sim):
            sender = ScpsFpSender(a.ip, 2, rate_bps=1e6)
            yield sim.timeout(1.0)
            link.set_up(False)
            try:
                yield from sender.put("f.bit", b"z" * 5000)
                outcome["result"] = "done"
            except ScpsError as exc:
                outcome["result"] = "error"
                outcome["msg"] = str(exc)
                outcome["t"] = sim.now

        sim.process(cli(sim))
        sim.run(until=500.0)
        assert outcome["result"] == "error"
        assert "link down" in outcome["msg"]
        # 1.5+3+6+12+12+12 = 46.5 s of probes plus the stream time
        assert outcome["t"] < 120.0


class TestTftpDeadLink:
    def test_write_into_dead_link_bounded_error(self):
        """A WRQ into a dead link errors out; the server holds nothing."""
        sim, a, b, link = pair()
        server = TftpServer(b.ip)
        outcome = {}

        def cli(sim):
            client = TftpClient(a.ip, 2)
            yield sim.timeout(0.5)
            link.set_up(False)
            try:
                yield from client.write("f.bit", b"w" * 1500)
            except TftpError:
                outcome["t"] = sim.now

        sim.process(cli(sim))
        sim.run(until=200.0)
        # retries * timeout = 8 * 2 s per phase
        assert outcome["t"] < 40.0
        assert "f.bit" not in server.files

    def test_server_idle_reack_rides_out_a_short_outage(self):
        """The server re-ACKs through a quiet window instead of aborting.

        The outage is shorter than both the client's per-block retry
        budget (8 x 2 s) and the server's idle give-up (8 x 4 s), so
        the transfer must complete cleanly once the link returns.
        """
        sim, a, b, link = pair()
        server = TftpServer(b.ip)
        payload = bytes(range(256)) * 6  # 3 blocks
        outcome = {}

        def cli(sim):
            client = TftpClient(a.ip, 2)
            yield from client.write("f.bit", payload)
            outcome["t"] = sim.now

        def chaos(sim):
            yield sim.timeout(0.9)  # mid-transfer
            link.set_up(False)
            yield sim.timeout(6.0)
            link.set_up(True)

        sim.process(cli(sim))
        sim.process(chaos(sim))
        sim.run(until=120.0)
        assert server.files.get("f.bit") == payload
        assert outcome["t"] < 60.0

    def test_final_ack_dies_in_blackout_but_data_survives(self):
        """Dallying: the data completed on board even though the ACK died.

        The link drops after the final DATA block lands but before its
        ACK reaches the ground.  The client (correctly) reports failure,
        yet the server holds the complete file -- exactly the gap the
        resumable layer's ``xfer_status`` report repairs without
        re-sending the segment.
        """
        sim, a, b, link = pair()
        server = TftpServer(b.ip)
        payload = b"s" * 100  # single block
        outcome = {}

        def cli(sim):
            client = TftpClient(a.ip, 2)
            try:
                yield from client.write("f.bit", payload)
                outcome["result"] = "ok"
            except TftpError:
                outcome["result"] = "error"

        def chaos(sim):
            # WRQ lands ~0.25, ACK0 back ~0.50, DATA1 lands ~0.755,
            # final ACK would land ~1.006 -- cut the link in between
            yield sim.timeout(0.9)
            link.set_up(False)

        sim.process(cli(sim))
        sim.process(chaos(sim))
        sim.run(until=200.0)
        assert outcome["result"] == "error"
        assert server.files.get("f.bit") == payload
