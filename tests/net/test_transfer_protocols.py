"""Tests for TCP and the three file-transfer protocols (TFTP/FTP/SCPS-FP)."""

import numpy as np
import pytest

from repro.net import (
    FtpClient,
    FtpServer,
    Link,
    Node,
    ScpsFpReceiver,
    ScpsFpSender,
    TcpConnection,
    TcpListener,
    TftpClient,
    TftpServer,
)
from repro.net.ftp import FtpError
from repro.net.tftp import TftpError
from repro.sim import RngRegistry, Simulator


def fresh(delay=0.25, rate=1e6, ber=0.0, seed=0):
    sim = Simulator()
    a = Node(sim, "ncc", 1)
    b = Node(sim, "sat", 2)
    rng = RngRegistry(seed).stream("link") if ber > 0 else None
    link = Link(sim, delay=delay, rate_bps=rate, ber=ber, rng=rng)
    link.attach(a)
    link.attach(b)
    return sim, a, b, link


def tcp_transfer(sim, a, b, payload, window=65_535, until=600.0, slow_start=True):
    """Run a one-way TCP transfer; returns (ok, finish_time)."""
    results = {}

    def srv(sim):
        lst = TcpListener(b.ip, 2100)
        conn = yield lst.accept()
        got = bytearray()
        while True:
            chunk = yield conn.recv()
            if chunk is None:
                break
            got.extend(chunk)
        results["ok"] = bytes(got) == payload
        results["t"] = sim.now

    def cli(sim):
        conn = TcpConnection(a.ip, 41000, 2, 2100, window=window, slow_start=slow_start)
        yield conn.connect()
        conn.send(payload)
        conn.close()
        yield conn.wait_closed()

    sim.process(srv(sim))
    sim.process(cli(sim))
    sim.run(until=until)
    return results.get("ok", False), results.get("t", float("inf"))


class TestTcp:
    def test_handshake_takes_one_rtt(self):
        sim, a, b, _ = fresh()
        results = {}

        def srv(sim):
            lst = TcpListener(b.ip, 80)
            yield lst.accept()

        def cli(sim):
            conn = TcpConnection(a.ip, 41000, 2, 80)
            yield conn.connect()
            results["t"] = sim.now

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=10)
        assert 0.5 < results["t"] < 0.55

    def test_bulk_transfer_integrity(self):
        sim, a, b, _ = fresh()
        payload = bytes(range(256)) * 400  # 100 kB
        ok, _ = tcp_transfer(sim, a, b, payload)
        assert ok

    def test_window_limits_throughput(self):
        """Steady-state throughput ~ window/RTT (slow start disabled to
        isolate the RFC 2488 window effect)."""
        payload = bytes(1 << 17)  # 128 kB
        sim1, a1, b1, _ = fresh(rate=1e7)
        ok1, t1 = tcp_transfer(sim1, a1, b1, payload, window=16_384, slow_start=False)
        sim2, a2, b2, _ = fresh(rate=1e7)
        ok2, t2 = tcp_transfer(sim2, a2, b2, payload, window=65_536, slow_start=False)
        assert ok1 and ok2
        assert t2 < t1
        assert t1 / t2 > 2.0  # at least 2x faster with 4x window

    def test_recovers_from_loss(self):
        sim, a, b, link = fresh(ber=3e-6, seed=3)
        payload = bytes(range(256)) * 100  # 25 kB
        ok, _ = tcp_transfer(sim, a, b, payload)
        assert ok
        assert link.stats["dropped"] > 0  # the channel actually lost frames

    def test_slow_start_grows_cwnd(self):
        sim, a, b, _ = fresh()
        conn = TcpConnection(a.ip, 41000, 2, 2100, window=65_535, slow_start=True)
        assert conn.cwnd == conn.MSS

        def srv(sim):
            lst = TcpListener(b.ip, 2100)
            c = yield lst.accept()
            while True:
                chunk = yield c.recv()
                if chunk is None:
                    break

        def cli(sim):
            yield conn.connect()
            conn.send(bytes(50_000))
            conn.close()
            yield conn.wait_closed()

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=120)
        assert conn.cwnd > conn.MSS

    def test_send_after_close_rejected(self):
        sim, a, b, _ = fresh()
        conn = TcpConnection(a.ip, 41000, 2, 2100)
        conn.state = "ESTABLISHED"  # bypass handshake for the check
        conn.close()
        with pytest.raises(OSError):
            conn.send(b"late")

    def test_window_validation(self):
        sim, a, _, _ = fresh()
        with pytest.raises(ValueError):
            TcpConnection(a.ip, 41000, 2, 2100, window=100)

    def test_duplicate_listener_rejected(self):
        sim, a, _, _ = fresh()
        TcpListener(a.ip, 80)
        with pytest.raises(OSError):
            TcpListener(a.ip, 80)


class TestTftp:
    def test_read_roundtrip(self):
        sim, a, b, _ = fresh()
        data = bytes(range(256)) * 8  # 2048 bytes = exactly 4 blocks
        TftpServer(b.ip, {"f.bit": data})
        results = {}

        def cli(sim):
            c = TftpClient(a.ip, 2)
            results["data"] = yield from c.read("f.bit")

        sim.process(cli(sim))
        sim.run(until=300)
        assert results["data"] == data

    def test_write_roundtrip(self):
        sim, a, b, _ = fresh()
        store = {}
        TftpServer(b.ip, store)
        data = bytes(1000)
        done = {}

        def cli(sim):
            c = TftpClient(a.ip, 2)
            yield from c.write("up.bit", data)
            done["ok"] = True

        sim.process(cli(sim))
        sim.run(until=300)
        assert done.get("ok")
        assert store["up.bit"] == data

    def test_block_multiple_size_terminates(self):
        """A file of exactly N*512 bytes needs a trailing empty DATA."""
        sim, a, b, _ = fresh()
        data = bytes(1024)
        TftpServer(b.ip, {"f": data})
        results = {}

        def cli(sim):
            c = TftpClient(a.ip, 2)
            results["data"] = yield from c.read("f")

        sim.process(cli(sim))
        sim.run(until=300)
        assert results["data"] == data

    def test_missing_file_errors(self):
        sim, a, b, _ = fresh()
        TftpServer(b.ip, {})
        caught = {}

        def cli(sim):
            c = TftpClient(a.ip, 2)
            try:
                yield from c.read("nope")
            except TftpError as exc:
                caught["err"] = str(exc)

        sim.process(cli(sim))
        sim.run(until=300)
        assert "err" in caught

    def test_stop_and_wait_pace_is_one_block_per_rtt(self):
        """The paper's §3.3 complaint: TFTP transfers 512 B per RTT."""
        sim, a, b, _ = fresh(delay=0.25, rate=1e8)  # rate not the bottleneck
        nblocks = 8
        data = bytes(nblocks * 512 - 10)
        TftpServer(b.ip, {"f": data})
        results = {}

        def cli(sim):
            c = TftpClient(a.ip, 2)
            results["data"] = yield from c.read("f")
            results["t"] = sim.now

        sim.process(cli(sim))
        sim.run(until=300)
        assert results["data"] == data
        # RRQ + 8 data/ack exchanges, each ~one 0.5 s RTT
        assert 0.5 * nblocks < results["t"] < 0.5 * (nblocks + 3)

    def test_survives_loss(self):
        sim, a, b, link = fresh(ber=1e-5, seed=7)
        data = bytes(range(256)) * 6
        TftpServer(b.ip, {"f": data})
        results = {}

        def cli(sim):
            c = TftpClient(a.ip, 2, timeout=1.5)
            results["data"] = yield from c.read("f")

        sim.process(cli(sim))
        sim.run(until=600)
        assert results.get("data") == data


class TestFtp:
    def test_put_get_roundtrip(self):
        sim, a, b, _ = fresh()
        store = {}
        FtpServer(b.ip, store)
        payload = bytes(range(256)) * 300
        results = {}

        def cli(sim):
            c = FtpClient(a.ip, 2)
            yield from c.put("cfg.bit", payload)
            results["stored"] = store["cfg.bit"] == payload
            got = yield from c.get("cfg.bit")
            results["got"] = got == payload

        sim.process(cli(sim))
        sim.run(until=600)
        assert results.get("stored") and results.get("got")

    def test_get_missing_errors(self):
        sim, a, b, _ = fresh()
        FtpServer(b.ip, {})
        caught = {}

        def cli(sim):
            c = FtpClient(a.ip, 2)
            try:
                yield from c.get("nope")
            except FtpError:
                caught["err"] = True

        sim.process(cli(sim))
        sim.run(until=120)
        assert caught.get("err")

    def test_ftp_beats_tftp_on_large_files(self):
        """The paper's §3.3 conclusion: use FTP for large transfers."""
        payload = bytes(64 * 1024)

        sim1, a1, b1, _ = fresh(rate=1e6)
        TftpServer(b1.ip, {"f": payload})
        t_tftp = {}

        def tftp_cli(sim):
            c = TftpClient(a1.ip, 2)
            yield from c.read("f")
            t_tftp["t"] = sim.now

        sim1.process(tftp_cli(sim1))
        sim1.run(until=3600)

        sim2, a2, b2, _ = fresh(rate=1e6)
        FtpServer(b2.ip, {"f": payload})
        t_ftp = {}

        def ftp_cli(sim):
            c = FtpClient(a2.ip, 2)
            yield from c.get("f")
            t_ftp["t"] = sim.now

        sim2.process(ftp_cli(sim2))
        sim2.run(until=3600)

        assert t_ftp["t"] < t_tftp["t"] / 5  # windowed is >5x faster


class TestScpsFp:
    def test_clean_transfer_single_round(self):
        sim, a, b, _ = fresh()
        store = {}
        ScpsFpReceiver(b.ip, files=store)
        payload = bytes(range(256)) * 256  # 64 kB
        results = {}

        def cli(sim):
            s = ScpsFpSender(a.ip, 2, rate_bps=1e6)
            results["rounds"] = yield from s.put("f", payload)
            results["t"] = sim.now

        sim.process(cli(sim))
        sim.run(until=600)
        assert store.get("f") == payload
        assert results["rounds"] == 0

    def test_snack_repairs_losses(self):
        sim, a, b, link = fresh(ber=2e-6, seed=5)
        store = {}
        rx = ScpsFpReceiver(b.ip, files=store)
        payload = bytes(range(256)) * 512  # 128 kB
        results = {}

        def cli(sim):
            s = ScpsFpSender(a.ip, 2, rate_bps=1e6)
            results["rounds"] = yield from s.put("f", payload)

        sim.process(cli(sim))
        sim.run(until=600)
        assert store.get("f") == payload
        assert link.stats["dropped"] > 0
        assert results["rounds"] >= 1  # at least one SNACK repair round

    def test_faster_than_ftp_at_high_bandwidth_delay(self):
        """Open-loop streaming avoids window stalls on a fat long pipe."""
        payload = bytes(256 * 1024)

        sim1, a1, b1, _ = fresh(rate=1e7)
        t_ftp = {}
        FtpServer(b1.ip, {})

        def ftp_cli(sim):
            c = FtpClient(a1.ip, 2, window=65_535)
            yield from c.put("f", payload)
            t_ftp["t"] = sim.now

        sim1.process(ftp_cli(sim1))
        sim1.run(until=3600)

        sim2, a2, b2, _ = fresh(rate=1e7)
        store = {}
        ScpsFpReceiver(b2.ip, files=store)
        t_scps = {}

        def scps_cli(sim):
            s = ScpsFpSender(a2.ip, 2, rate_bps=1e7)
            yield from s.put("f", payload)
            t_scps["t"] = sim.now

        sim2.process(scps_cli(sim2))
        sim2.run(until=3600)
        assert store.get("f") == payload
        assert t_scps["t"] < t_ftp["t"]

    def test_rate_validation(self):
        sim, a, _, _ = fresh()
        with pytest.raises(ValueError):
            ScpsFpSender(a.ip, 2, rate_bps=0)
