"""Additional TCP behaviours: bidirectional streams, interleaved
connections, teardown semantics."""

import numpy as np
import pytest

from repro.net import Link, Node, TcpConnection, TcpListener
from repro.sim import RngRegistry, Simulator


def pair(ber=0.0, seed=0, rate=1e6):
    sim = Simulator()
    a = Node(sim, "a", 1)
    b = Node(sim, "b", 2)
    rng = RngRegistry(seed).stream("l") if ber else None
    link = Link(sim, delay=0.1, rate_bps=rate, ber=ber, rng=rng)
    link.attach(a)
    link.attach(b)
    return sim, a, b


class TestBidirectional:
    def test_full_duplex_exchange(self):
        """Both directions carry data on one connection simultaneously."""
        sim, a, b = pair()
        up = bytes(range(256)) * 40
        down = bytes(reversed(range(256))) * 30
        got = {}

        def srv(sim):
            lst = TcpListener(b.ip, 80)
            conn = yield lst.accept()
            conn.send(down)
            buf = bytearray()
            while len(buf) < len(up):
                chunk = yield conn.recv()
                if chunk is None:
                    break
                buf.extend(chunk)
            got["up"] = bytes(buf)

        def cli(sim):
            conn = TcpConnection(a.ip, 41000, 2, 80)
            yield conn.connect()
            conn.send(up)
            buf = bytearray()
            while len(buf) < len(down):
                chunk = yield conn.recv()
                if chunk is None:
                    break
                buf.extend(chunk)
            got["down"] = bytes(buf)

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=300)
        assert got.get("up") == up
        assert got.get("down") == down

    def test_many_sequential_connections(self):
        """Fresh local ports allow back-to-back sessions to one server."""
        sim, a, b = pair()
        served = []

        def srv(sim):
            lst = TcpListener(b.ip, 80)
            while True:
                conn = yield lst.accept()
                chunk = yield conn.recv()
                served.append(chunk)

        def cli(sim):
            for i in range(5):
                conn = TcpConnection(a.ip, 42000 + i, 2, 80)
                yield conn.connect()
                conn.send(bytes([i]) * 100)
                conn.close()
                yield sim.timeout(1.0)

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=120)
        assert len(served) == 5
        for i, chunk in enumerate(served):
            assert chunk == bytes([i]) * 100

    def test_interleaved_parallel_connections(self):
        """Two clients transfer concurrently without crosstalk."""
        sim, a, b = pair(rate=1e7)
        payloads = {0: bytes([7]) * 20000, 1: bytes([9]) * 20000}
        got = {}

        def srv(sim):
            lst = TcpListener(b.ip, 80)
            while True:
                conn = yield lst.accept()
                sim.process(session(sim, conn))

        def session(sim, conn):
            buf = bytearray()
            while True:
                chunk = yield conn.recv()
                if chunk is None:
                    break
                buf.extend(chunk)
            got[buf[0]] = bytes(buf)

        def cli(sim, idx):
            conn = TcpConnection(a.ip, 43000 + idx, 2, 80)
            yield conn.connect()
            conn.send(payloads[idx])
            conn.close()

        sim.process(srv(sim))
        sim.process(cli(sim, 0))
        sim.process(cli(sim, 1))
        sim.run(until=300)
        assert got.get(7) == payloads[0]
        assert got.get(9) == payloads[1]


class TestTeardown:
    def test_fin_delivers_eof_after_data(self):
        sim, a, b = pair()
        events = []

        def srv(sim):
            lst = TcpListener(b.ip, 80)
            conn = yield lst.accept()
            while True:
                chunk = yield conn.recv()
                events.append(chunk)
                if chunk is None:
                    return

        def cli(sim):
            conn = TcpConnection(a.ip, 44000, 2, 80)
            yield conn.connect()
            conn.send(b"last words")
            conn.close()

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=60)
        assert events == [b"last words", None]

    def test_close_idempotent(self):
        sim, a, b = pair()
        TcpListener(b.ip, 80)
        conn = TcpConnection(a.ip, 45000, 2, 80)

        def cli(sim):
            yield conn.connect()
            conn.close()
            conn.close()  # second close is a no-op
            yield conn.wait_closed()

        p = sim.process(cli(sim))
        sim.run(until=60)
        assert p.processed and p.ok

    def test_wait_closed_fires_on_fin_ack(self):
        sim, a, b = pair()
        t_closed = {}

        def srv(sim):
            lst = TcpListener(b.ip, 80)
            conn = yield lst.accept()
            while True:
                chunk = yield conn.recv()
                if chunk is None:
                    return

        def cli(sim):
            conn = TcpConnection(a.ip, 46000, 2, 80)
            yield conn.connect()
            conn.send(bytes(1000))
            conn.close()
            yield conn.wait_closed()
            t_closed["t"] = sim.now

        sim.process(srv(sim))
        sim.process(cli(sim))
        sim.run(until=60)
        assert "t" in t_closed
        assert t_closed["t"] < 10.0
