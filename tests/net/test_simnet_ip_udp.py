"""Tests for the link model, IP layer and UDP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import IpPacket, Link, Node, UdpSocket
from repro.net.ip import _checksum
from repro.net.simnet import GEO_ONE_WAY_DELAY
from repro.sim import RngRegistry, Simulator


def fresh(delay=0.25, rate=1e6, ber=0.0, rng=None):
    sim = Simulator()
    a = Node(sim, "ncc", 1)
    b = Node(sim, "sat", 2)
    link = Link(sim, delay=delay, rate_bps=rate, ber=ber, rng=rng)
    link.attach(a)
    link.attach(b)
    return sim, a, b, link


class TestLink:
    def test_geo_delay_constant(self):
        assert GEO_ONE_WAY_DELAY == 0.25

    def test_propagation_plus_serialization(self):
        sim, a, b, link = fresh(delay=0.1, rate=8000.0)  # 1 kB/s
        got = []
        b.frame_tap = lambda f: got.append((sim.now, f))
        a.send_frame(b"x" * 100)  # 800 bits -> 0.1 s serialization
        sim.run()
        assert len(got) == 1
        assert np.isclose(got[0][0], 0.1 + 0.1)

    def test_fifo_queueing_per_direction(self):
        sim, a, b, link = fresh(delay=0.0, rate=8000.0)
        got = []
        b.frame_tap = lambda f: got.append(sim.now)
        a.send_frame(b"x" * 100)
        a.send_frame(b"y" * 100)  # must wait for the first
        sim.run()
        assert np.isclose(got[0], 0.1)
        assert np.isclose(got[1], 0.2)

    def test_ber_drops_frames(self):
        rng = RngRegistry(0).stream("link")
        sim, a, b, link = fresh(ber=0.01, rng=rng)  # hopeless for 1kb frames
        got = []
        b.frame_tap = lambda f: got.append(f)
        for _ in range(50):
            a.send_frame(bytes(125))  # 1000 bits: P(ok) ~ 4e-5
        sim.run()
        assert len(got) == 0
        assert link.stats["dropped"] == 50

    def test_lossy_link_requires_rng(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, ber=0.1)

    def test_third_endpoint_rejected(self):
        sim, a, b, link = fresh()
        with pytest.raises(ValueError):
            link.attach(Node(sim, "c", 3))

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, delay=-1)
        with pytest.raises(ValueError):
            Link(sim, rate_bps=0)


class TestIp:
    def test_packet_roundtrip(self):
        pkt = IpPacket(src=1, dst=2, proto=17, ident=42, payload=b"hello")
        out = IpPacket.decode(pkt.encode())
        assert (out.src, out.dst, out.proto, out.ident, out.payload) == (
            1, 2, 17, 42, b"hello",
        )

    def test_checksum_detects_corruption(self):
        data = bytearray(IpPacket(1, 2, 17, 1, b"payload").encode())
        data[4] ^= 0xFF  # corrupt a header byte
        with pytest.raises(ValueError):
            IpPacket.decode(bytes(data))

    def test_checksum_ones_complement_zero(self):
        # checksum of data including its own checksum verifies to 0
        data = b"\x12\x34\x56\x78"
        ck = _checksum(data)
        import struct

        assert _checksum(data + struct.pack(">H", ck)) == 0

    def test_delivery_to_protocol_handler(self):
        sim, a, b, _ = fresh()
        got = []
        b.ip.register_protocol(99, lambda pkt: got.append(pkt.payload))
        a.ip.send(2, 99, b"data")
        sim.run()
        assert got == [b"data"]

    def test_wrong_destination_ignored(self):
        sim, a, b, _ = fresh()
        got = []
        b.ip.register_protocol(99, lambda pkt: got.append(pkt))
        a.ip.send(77, 99, b"data")  # no node 77 on this hop
        sim.run()
        assert got == []

    def test_fragmentation_reassembly(self):
        sim, a, b, _ = fresh()
        got = []
        b.ip.register_protocol(99, lambda pkt: got.append(pkt.payload))
        payload = bytes(range(256)) * 20  # 5120 bytes > 1024 MTU
        a.ip.send(2, 99, payload)
        sim.run()
        assert got == [payload]
        assert a.ip.stats["fragments"] > 1

    def test_fragment_loss_means_no_delivery(self):
        rng = RngRegistry(1).stream("l")
        sim, a, b, link = fresh(ber=2e-4, rng=rng)
        got = []
        b.ip.register_protocol(99, lambda pkt: got.append(pkt.payload))
        a.ip.send(2, 99, bytes(4096))
        sim.run()
        # with this BER most 1kB fragments drop; reassembly must not
        # deliver a partial datagram
        assert got == [] or got == [bytes(4096)]

    def test_mtu_validation(self):
        from repro.net.ip import IpStack

        sim = Simulator()
        node = Node(sim, "n", 5)
        with pytest.raises(ValueError):
            IpStack(node, mtu=10)

    @given(st.binary(min_size=0, max_size=3000))
    @settings(max_examples=30, deadline=None)
    def test_any_payload_survives_property(self, payload):
        sim, a, b, _ = fresh()
        got = []
        b.ip.register_protocol(99, lambda pkt: got.append(pkt.payload))
        a.ip.send(2, 99, payload)
        sim.run()
        assert got == [payload]


class TestUdp:
    def test_request_response_timing(self):
        sim, a, b, _ = fresh(delay=0.25)
        results = {}

        def server(sim):
            s = UdpSocket(b.ip, 69)
            data, (addr, port) = yield s.recv()
            s.sendto(b"pong", addr, port)

        def client(sim):
            s = UdpSocket(a.ip)
            s.sendto(b"ping", 2, 69)
            data, _src = yield s.recv()
            results["t"] = sim.now
            results["data"] = data

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run()
        assert results["data"] == b"pong"
        assert 0.5 < results["t"] < 0.52  # one RTT plus serialization

    def test_port_collision_rejected(self):
        sim, a, _, _ = fresh()
        UdpSocket(a.ip, 1000)
        with pytest.raises(OSError):
            UdpSocket(a.ip, 1000)

    def test_close_releases_port(self):
        sim, a, _, _ = fresh()
        s = UdpSocket(a.ip, 1000)
        s.close()
        UdpSocket(a.ip, 1000)  # rebind OK

    def test_closed_socket_rejects_io(self):
        sim, a, _, _ = fresh()
        s = UdpSocket(a.ip, 1000)
        s.close()
        with pytest.raises(OSError):
            s.sendto(b"x", 2, 1)
        with pytest.raises(OSError):
            s.recv()

    def test_ephemeral_ports_unique(self):
        sim, a, _, _ = fresh()
        s1 = UdpSocket(a.ip)
        s2 = UdpSocket(a.ip)
        assert s1.port != s2.port

    def test_cancel_recv_prevents_datagram_theft(self):
        """A withdrawn getter must not swallow a later datagram."""
        sim, a, b, _ = fresh()
        results = {}

        def client(sim):
            s = UdpSocket(a.ip, 500)
            ev = s.recv()
            yield sim.timeout(0.1)  # nothing arrives
            assert s.cancel_recv(ev)
            # now the real receive
            data, _src = yield s.recv()
            results["data"] = data

        def server(sim):
            s = UdpSocket(b.ip, 501)
            yield sim.timeout(0.2)
            s.sendto(b"late", 1, 500)

        sim.process(client(sim))
        sim.process(server(sim))
        sim.run()
        assert results["data"] == b"late"

    def test_port_range_validation(self):
        sim, a, _, _ = fresh()
        with pytest.raises(ValueError):
            UdpSocket(a.ip, 0)
        with pytest.raises(ValueError):
            UdpSocket(a.ip, 70000)
