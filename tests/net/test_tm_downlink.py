"""Tests for the TM downlink frames and streams."""

import pytest

from repro.net import Link, Node
from repro.net.tm import TM_COUNT_CYCLE, TelemetryDownlink, TelemetryMonitor, TmFrame
from repro.sim import RngRegistry, Simulator


def pair(ber=0.0, seed=0):
    sim = Simulator()
    sat = Node(sim, "sat", 2)
    ncc = Node(sim, "ncc", 1)
    rng = RngRegistry(seed).stream("link") if ber else None
    link = Link(sim, delay=0.25, rate_bps=1e6, ber=ber, rng=rng)
    link.attach(sat)
    link.attach(ncc)
    return sim, sat, ncc


class TestTmFrame:
    def test_roundtrip(self):
        f = TmFrame(vc=2, master_count=100, vc_count=7, data=b"hk-data")
        g = TmFrame.decode(f.encode())
        assert (g.vc, g.master_count, g.vc_count, g.data) == (2, 100, 7, b"hk-data")

    def test_crc_detects_corruption(self):
        raw = bytearray(TmFrame(0, 0, 0, b"data").encode())
        raw[4] ^= 0x20
        with pytest.raises(ValueError):
            TmFrame.decode(bytes(raw))

    def test_counter_wrap(self):
        f = TmFrame(0, 0x1_0005, 0x2_0009, b"")
        assert f.master_count == 5 and f.vc_count == 9

    def test_counters_are_8_bit_on_the_wire(self):
        """CCSDS TM frame counts are one octet: 256 wraps to 0."""
        assert TM_COUNT_CYCLE == 256
        f = TmFrame.decode(TmFrame(0, 255, 255, b"x").encode())
        assert (f.master_count, f.vc_count) == (255, 255)
        g = TmFrame.decode(TmFrame(0, 256, 257, b"x").encode())
        assert (g.master_count, g.vc_count) == (0, 1)


class TestTelemetryStream:
    def test_records_reach_the_ground(self):
        sim, sat, ncc = pair()
        backlog = [{"hk": 1}, {"hk": 2}, {"hk": 3}]

        def source():
            out, backlog[:] = backlog[:], []
            return out

        TelemetryDownlink(sat, source, period=5.0)
        mon = TelemetryMonitor(ncc)
        got = []

        def collector(sim):
            for _ in range(3):
                rec = yield mon.records.get()
                got.append(rec)

        sim.process(collector(sim))
        sim.run(until=60)
        assert got == [{"hk": 1}, {"hk": 2}, {"hk": 3}]
        assert mon.gaps == 0

    def test_large_record_segmented(self):
        sim, sat, ncc = pair()
        big = {"dump": "x" * 1000}
        sent = {"done": False}

        def source():
            if sent["done"]:
                return []
            sent["done"] = True
            return [big]

        dl = TelemetryDownlink(sat, source, period=2.0)
        mon = TelemetryMonitor(ncc)
        got = []

        def collector(sim):
            rec = yield mon.records.get()
            got.append(rec)

        sim.process(collector(sim))
        sim.run(until=60)
        assert got == [big]
        assert dl.frames_sent > 1  # it was segmented

    def test_gap_counter_on_lossy_downlink(self):
        sim, sat, ncc = pair(ber=2e-3, seed=3)
        n_records = 40

        def source():
            nonlocal n_records
            if n_records <= 0:
                return []
            n_records -= 1
            return [{"seq": n_records}]

        TelemetryDownlink(sat, source, period=1.0)
        mon = TelemetryMonitor(ncc)
        sim.run(until=60)
        assert mon.frames_received > 0
        assert mon.gaps > 0  # losses were detected by the VC counter

    def test_long_playback_crosses_counter_wrap_without_gaps(self):
        """A recorder playback longer than one counter cycle stays
        continuous: 600 frames cross the 8-bit wrap twice and the
        monitor must not report a single gap."""
        sim, sat, ncc = pair()
        n = int(TM_COUNT_CYCLE * 2.5)
        backlog = [{"seq": i} for i in range(n)]

        def source():
            out, backlog[:] = backlog[:40], backlog[40:]
            return out

        dl = TelemetryDownlink(sat, source, period=1.0)
        mon = TelemetryMonitor(ncc)
        got = []

        def collector(sim):
            while len(got) < n:
                rec = yield mon.records.get()
                got.append(rec)

        sim.process(collector(sim))
        sim.run(until=120)
        assert len(got) == n
        assert got == [{"seq": i} for i in range(n)]
        assert mon.gaps == 0
        assert dl.frames_sent == n
        # the downlink counter itself stayed inside one octet
        assert 0 <= dl.vc_count < TM_COUNT_CYCLE

    def test_period_validation(self):
        sim, sat, ncc = pair()
        with pytest.raises(ValueError):
            TelemetryDownlink(sat, lambda: [], period=0.0)

    def test_obc_tm_log_as_source(self):
        """The Fig. 1 wiring: OBC telemetry log -> TM channel -> NCC."""
        from repro.core import PayloadConfig, RegenerativePayload, Telecommand

        sim, sat, ncc = pair()
        payload = RegenerativePayload(
            PayloadConfig(num_carriers=1, fpga_rows=8, fpga_cols=8,
                          fpga_bits_per_clb=32)
        )
        payload.boot()
        cursor = {"n": 0}

        def source():
            log = payload.obc.tm_log
            out = [
                {"tc_id": tm.tc_id, "success": tm.success}
                for tm in log[cursor["n"]:]
            ]
            cursor["n"] = len(log)
            return out

        TelemetryDownlink(sat, source, period=5.0)
        mon = TelemetryMonitor(ncc)
        payload.obc.execute(Telecommand(41, "status"))
        got = []

        def collector(sim):
            rec = yield mon.records.get()
            got.append(rec)

        sim.process(collector(sim))
        sim.run(until=30)
        assert got == [{"tc_id": 41, "success": True}]
