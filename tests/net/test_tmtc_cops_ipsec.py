"""Tests for the TM/TC layer, COPS and IPsec-ESP."""

import pytest

from repro.net import (
    CopsClient,
    CopsServer,
    Decision,
    EspTunnel,
    Link,
    Node,
    Report,
    Request,
    UdpSocket,
)
from repro.net.ipsec import IpsecError, xtea_encrypt_block
from repro.net.tmtc import FRAME_DATA_MAX, TcFrame, TmtcLayer
from repro.sim import RngRegistry, Simulator


def fresh(ber=0.0, seed=0, rate=1e6):
    sim = Simulator()
    a = Node(sim, "ncc", 1)
    b = Node(sim, "sat", 2)
    rng = RngRegistry(seed).stream("link") if ber > 0 else None
    link = Link(sim, delay=0.25, rate_bps=rate, ber=ber, rng=rng)
    link.attach(a)
    link.attach(b)
    return sim, a, b, link


class TestTcFrame:
    def test_roundtrip(self):
        f = TcFrame(vc=3, flags=0x30, seq=7, data=b"telecommand")
        g = TcFrame.decode(f.encode())
        assert (g.vc, g.flags, g.seq, g.data) == (3, 0x30, 7, b"telecommand")

    def test_crc_detects_corruption(self):
        raw = bytearray(TcFrame(0, 0, 0, b"data").encode())
        raw[3] ^= 0x40
        with pytest.raises(ValueError):
            TcFrame.decode(bytes(raw))

    def test_short_frame_rejected(self):
        with pytest.raises(ValueError):
            TcFrame.decode(b"abc")


class TestTmtcLayer:
    def test_express_mode_delivers_sdu(self):
        sim, a, b, _ = fresh()
        ta = TmtcLayer(a)
        tb = TmtcLayer(b)
        got = []
        tb.register_handler(0, got.append)
        sdu = bytes(range(256)) * 4  # > one frame -> segmentation
        ta.send_sdu(sdu, vc=0, mode="BD")
        sim.run()
        assert got == [sdu]

    def test_express_mode_loses_on_bad_link(self):
        """BD has no ARQ: heavy loss kills the SDU (the paper's 'small
        test in question/response mode' use case only)."""
        sim, a, b, _ = fresh(ber=1e-3, seed=1)
        ta = TmtcLayer(a)
        tb = TmtcLayer(b)
        got = []
        tb.register_handler(0, got.append)
        ta.send_sdu(bytes(2000), vc=0, mode="BD")
        sim.run()
        assert got == []

    def test_controlled_mode_retransmits(self):
        """AD mode survives frame loss via go-back-N (the 'reliable
        transfer of data configuration' mode)."""
        sim, a, b, link = fresh(ber=1e-4, seed=2)
        ta = TmtcLayer(a, rto=0.8)
        tb = TmtcLayer(b, rto=0.8)
        got = []
        tb.register_handler(0, got.append)
        sdu = bytes(range(256)) * 16  # 4 kB -> ~17 frames
        ta.send_sdu(sdu, vc=0, mode="AD")
        sim.run(until=120)
        assert got == [sdu]
        assert link.stats["dropped"] > 0
        assert ta._senders[0].retransmissions > 0

    def test_virtual_channels_isolated(self):
        """'Some virtual channels may be dedicated to the reconfiguration
        procedure' -- traffic must demux by VC."""
        sim, a, b, _ = fresh()
        ta = TmtcLayer(a)
        tb = TmtcLayer(b)
        vc0, vc1 = [], []
        tb.register_handler(0, vc0.append)
        tb.register_handler(1, vc1.append)
        ta.send_sdu(b"ops", vc=0, mode="AD")
        ta.send_sdu(b"reconfig", vc=1, mode="AD")
        sim.run(until=60)
        assert vc0 == [b"ops"]
        assert vc1 == [b"reconfig"]

    def test_ip_over_tmtc(self):
        """The paper: 'IP stack replaces the data management service'."""
        sim, a, b, _ = fresh()
        ta = TmtcLayer(a)
        tb = TmtcLayer(b)
        ta.install_under_ip(vc=1, mode="AD")
        tb.install_under_ip(vc=1, mode="AD")
        results = {}

        def server(sim):
            s = UdpSocket(b.ip, 1000)
            data, _src = yield s.recv()
            results["data"] = data

        def client(sim):
            s = UdpSocket(a.ip)
            s.sendto(bytes(range(200)), 2, 1000)
            yield sim.timeout(0)

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=60)
        assert results.get("data") == bytes(range(200))

    def test_ip_over_lossy_tmtc_controlled(self):
        sim, a, b, link = fresh(ber=4e-5, seed=3)
        ta = TmtcLayer(a, rto=0.8)
        tb = TmtcLayer(b, rto=0.8)
        ta.install_under_ip(vc=1, mode="AD")
        tb.install_under_ip(vc=1, mode="AD")
        results = {}

        def server(sim):
            s = UdpSocket(b.ip, 1000)
            data, _src = yield s.recv()
            results["data"] = data

        def client(sim):
            s = UdpSocket(a.ip)
            s.sendto(bytes(range(256)) * 8, 2, 1000)
            yield sim.timeout(0)

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run(until=300)
        assert results.get("data") == bytes(range(256)) * 8

    def test_mode_validation(self):
        sim, a, _, _ = fresh()
        ta = TmtcLayer(a)
        with pytest.raises(ValueError):
            ta.send_sdu(b"x", mode="XX")

    def test_frame_size_validation(self):
        sim, a, _, _ = fresh()
        with pytest.raises(ValueError):
            TmtcLayer(a, frame_data_max=4)

    def test_frame_data_budget(self):
        assert FRAME_DATA_MAX == 249


class TestCops:
    def test_request_decision_report_loop(self):
        sim, a, b, _ = fresh()
        decisions_made = []

        def policy(req):
            decisions_made.append(req.handle)
            return Decision(handle=req.handle, directives={"action": "reload"})

        pdp = CopsServer(a.ip, policy)
        results = {}

        def pep(sim):
            c = CopsClient(b.ip, 1)
            yield from c.open()
            dec = yield from c.request(Request(handle=5, context={"k": "v"}))
            results["directives"] = dec.directives
            c.report(Report(handle=5, success=True, detail={"crc": "ok"}))

        def reports(sim):
            rpt = yield pdp.reports.get()
            results["report"] = (rpt.handle, rpt.success)

        sim.process(pep(sim))
        sim.process(reports(sim))
        sim.run(until=60)
        assert results["directives"] == {"action": "reload"}
        assert results["report"] == (5, True)
        assert decisions_made == [5]

    def test_unsolicited_decision_push(self):
        """'transmitted at ... the server initiative'."""
        sim, a, b, _ = fresh()
        pdp = CopsServer(a.ip, lambda req: Decision(handle=req.handle))
        results = {}

        def pep(sim):
            c = CopsClient(b.ip, 1)
            yield from c.open()
            yield sim.timeout(1.0)
            dec = yield c.decisions.get()
            results["pushed"] = dec.directives

        def pusher(sim):
            yield sim.timeout(2.0)
            pdp.push_decision(2, Decision(handle=99, directives={"load": "tdma"}))

        sim.process(pep(sim))
        sim.process(pusher(sim))
        sim.run(until=60)
        assert results["pushed"] == {"load": "tdma"}

    def test_request_before_open_rejected(self):
        sim, a, b, _ = fresh()
        CopsServer(a.ip, lambda req: Decision(handle=req.handle))
        c = CopsClient(b.ip, 1)
        with pytest.raises(OSError):
            c.report(Report(handle=1, success=True))

    def test_push_to_unknown_client(self):
        sim, a, _, _ = fresh()
        pdp = CopsServer(a.ip, lambda req: Decision(handle=req.handle))
        with pytest.raises(KeyError):
            pdp.push_decision(42, Decision(handle=1))


class TestIpsec:
    def test_xtea_known_shape(self):
        ct = xtea_encrypt_block(b"\x00" * 8, b"\x00" * 16)
        assert len(ct) == 8
        assert ct != b"\x00" * 8

    def test_xtea_validation(self):
        with pytest.raises(ValueError):
            xtea_encrypt_block(b"short", b"\x00" * 16)
        with pytest.raises(ValueError):
            xtea_encrypt_block(b"\x00" * 8, b"short")

    def test_protect_unprotect_roundtrip(self):
        a = EspTunnel(b"k" * 16)
        b = EspTunnel(b"k" * 16)
        for msg in (b"", b"x", b"bitstream" * 100):
            assert b.unprotect(a.protect(msg)) == msg

    def test_ciphertext_differs_from_plaintext(self):
        a = EspTunnel(b"k" * 16)
        packet = a.protect(b"secret configuration data")
        assert b"secret" not in packet

    def test_tamper_detected(self):
        a = EspTunnel(b"k" * 16)
        b = EspTunnel(b"k" * 16)
        pkt = bytearray(a.protect(b"payload"))
        pkt[10] ^= 1
        with pytest.raises(IpsecError):
            b.unprotect(bytes(pkt))

    def test_replay_rejected(self):
        a = EspTunnel(b"k" * 16)
        b = EspTunnel(b"k" * 16)
        pkt = a.protect(b"once")
        b.unprotect(pkt)
        with pytest.raises(IpsecError):
            b.unprotect(pkt)

    def test_wrong_key_rejected(self):
        a = EspTunnel(b"k" * 16)
        b = EspTunnel(b"j" * 16)
        with pytest.raises(IpsecError):
            b.unprotect(a.protect(b"data"))

    def test_wrong_spi_rejected(self):
        a = EspTunnel(b"k" * 16, spi=1)
        b = EspTunnel(b"k" * 16, spi=2)
        with pytest.raises(IpsecError):
            b.unprotect(a.protect(b"data"))

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            EspTunnel(b"short")
