"""Property-based tests across the network stack (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import EspTunnel, Link, Node, TcpConnection, TcpListener
from repro.net.tmtc import TcFrame, TmtcLayer
from repro.sim import RngRegistry, Simulator


@given(st.binary(min_size=0, max_size=2000))
@settings(max_examples=40, deadline=None)
def test_esp_roundtrip_any_payload(payload):
    a = EspTunnel(b"k" * 16)
    b = EspTunnel(b"k" * 16)
    assert b.unprotect(a.protect(payload)) == payload


@given(st.integers(min_value=0, max_value=255), st.binary(max_size=400),
       st.integers(min_value=0, max_value=65535))
@settings(max_examples=40, deadline=None)
def test_tc_frame_roundtrip_property(vc, data, seq):
    f = TcFrame(vc, 0x30, seq, data)
    g = TcFrame.decode(f.encode())
    assert (g.vc, g.seq, g.data) == (vc, seq, data)


@given(st.binary(min_size=1, max_size=3000))
@settings(max_examples=25, deadline=None)
def test_tmtc_ad_delivers_any_sdu(sdu):
    sim = Simulator()
    a = Node(sim, "a", 1)
    b = Node(sim, "b", 2)
    link = Link(sim, delay=0.01, rate_bps=1e6)
    link.attach(a)
    link.attach(b)
    ta = TmtcLayer(a)
    tb = TmtcLayer(b)
    got = []
    tb.register_handler(0, got.append)
    ta.send_sdu(sdu, vc=0, mode="AD")
    sim.run(until=60)
    assert got == [sdu]


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=1, max_value=60))
@settings(max_examples=12, deadline=None)
def test_tcp_delivers_exact_bytes_under_any_loss_seed(seed, kbytes):
    """For any loss pattern the stream is delivered intact and in order."""
    sim = Simulator()
    a = Node(sim, "a", 1)
    b = Node(sim, "b", 2)
    rng = RngRegistry(seed).stream("loss")
    link = Link(sim, delay=0.05, rate_bps=5e6, ber=2e-6, rng=rng)
    link.attach(a)
    link.attach(b)
    payload = bytes((i * 37 + seed) % 256 for i in range(kbytes * 1024))
    got = bytearray()
    done = {}

    def srv(sim):
        lst = TcpListener(b.ip, 1000)
        conn = yield lst.accept()
        while True:
            chunk = yield conn.recv()
            if chunk is None:
                break
            got.extend(chunk)
        done["ok"] = True

    def cli(sim):
        conn = TcpConnection(a.ip, 41000, 2, 1000, rto=0.4)
        yield conn.connect()
        conn.send(payload)
        conn.close()

    sim.process(srv(sim))
    sim.process(cli(sim))
    sim.run(until=600)
    assert done.get("ok")
    assert bytes(got) == payload


@given(st.lists(st.binary(min_size=1, max_size=300), min_size=1, max_size=8))
@settings(max_examples=20, deadline=None)
def test_tmtc_preserves_sdu_boundaries_and_order(sdus):
    """Multiple SDUs on one VC arrive intact, in order, unmerged."""
    sim = Simulator()
    a = Node(sim, "a", 1)
    b = Node(sim, "b", 2)
    link = Link(sim, delay=0.01, rate_bps=1e6)
    link.attach(a)
    link.attach(b)
    ta = TmtcLayer(a)
    tb = TmtcLayer(b)
    got = []
    tb.register_handler(2, got.append)
    for sdu in sdus:
        ta.send_sdu(sdu, vc=2, mode="AD")
    sim.run(until=60)
    assert got == sdus
