"""Tests for the UMTS convolutional codes and the Viterbi decoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import UMTS_RATE_12, UMTS_RATE_13, ConvolutionalCode
from repro.dsp.modem import ebn0_to_sigma, theoretical_ber_bpsk


class TestEncoder:
    def test_encoded_length(self):
        assert UMTS_RATE_12.encoded_length(100) == (100 + 8) * 2
        assert UMTS_RATE_13.encoded_length(100) == (100 + 8) * 3

    def test_rate(self):
        assert UMTS_RATE_12.rate == 0.5
        assert np.isclose(UMTS_RATE_13.rate, 1 / 3)

    def test_zero_input_zero_output(self):
        out = UMTS_RATE_13.encode(np.zeros(40, dtype=np.uint8))
        np.testing.assert_array_equal(out, 0)

    def test_encoder_linearity(self):
        """Convolutional codes are linear: enc(a^b) == enc(a) ^ enc(b)."""
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 60).astype(np.uint8)
        b = rng.integers(0, 2, 60).astype(np.uint8)
        lhs = UMTS_RATE_12.encode(a ^ b)
        rhs = UMTS_RATE_12.encode(a) ^ UMTS_RATE_12.encode(b)
        np.testing.assert_array_equal(lhs, rhs)

    def test_impulse_response_matches_generators(self):
        """A single 1 produces the generator taps as output columns."""
        code = ConvolutionalCode((7, 5), 3)  # classic K=3 code
        out = code.encode(np.array([1], dtype=np.uint8))
        # g0 = 111, g1 = 101 -> outputs (1,1), (1,0), (1,1)
        np.testing.assert_array_equal(out, [1, 1, 1, 0, 1, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvolutionalCode((), 9)
        with pytest.raises(ValueError):
            ConvolutionalCode((7,), 1)
        with pytest.raises(ValueError):
            ConvolutionalCode((777,), 3)  # too wide for K=3


class TestViterbi:
    @pytest.mark.parametrize("code", [UMTS_RATE_12, UMTS_RATE_13])
    def test_noiseless_roundtrip(self, code):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 200).astype(np.uint8)
        decoded = code.decode(code.encode(bits), 200)
        np.testing.assert_array_equal(decoded, bits)

    def test_corrects_scattered_errors(self):
        """dfree of the UMTS rate-1/2 code is 12: isolated flips correct."""
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 150).astype(np.uint8)
        tx = UMTS_RATE_12.encode(bits)
        rx = tx.copy()
        rx[10] ^= 1
        rx[90] ^= 1
        rx[200] ^= 1
        decoded = UMTS_RATE_12.decode(rx, 150)
        np.testing.assert_array_equal(decoded, bits)

    def test_soft_beats_hard(self):
        """Soft-decision Viterbi must yield lower BER than hard-decision."""
        rng = np.random.default_rng(3)
        nbits, nblocks = 200, 30
        sigma = ebn0_to_sigma(2.0, 1, code_rate=0.5)
        hard_err = soft_err = 0
        for _ in range(nblocks):
            bits = rng.integers(0, 2, nbits).astype(np.uint8)
            tx = UMTS_RATE_12.encode(bits)
            y = 1.0 - 2.0 * tx + sigma * rng.standard_normal(len(tx))
            hard = (y < 0).astype(np.uint8)
            hard_err += np.count_nonzero(UMTS_RATE_12.decode(hard, nbits) != bits)
            soft_err += np.count_nonzero(
                UMTS_RATE_12.decode(2 * y / sigma**2, nbits, soft=True) != bits
            )
        assert soft_err < hard_err

    def test_coding_gain_over_uncoded(self):
        """At 4 dB Eb/N0 the rate-1/2 K=9 code must beat uncoded BPSK."""
        rng = np.random.default_rng(4)
        ebn0 = 4.0
        nbits, nblocks = 500, 20
        sigma = ebn0_to_sigma(ebn0, 1, code_rate=0.5)
        errors = 0
        for _ in range(nblocks):
            bits = rng.integers(0, 2, nbits).astype(np.uint8)
            tx = UMTS_RATE_12.encode(bits)
            y = 1.0 - 2.0 * tx + sigma * rng.standard_normal(len(tx))
            errors += np.count_nonzero(
                UMTS_RATE_12.decode(2 * y / sigma**2, nbits, soft=True) != bits
            )
        coded_ber = errors / (nbits * nblocks)
        assert coded_ber < 0.2 * theoretical_ber_bpsk(ebn0)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            UMTS_RATE_12.decode(np.zeros(10), 100)

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, n):
        rng = np.random.default_rng(n)
        bits = rng.integers(0, 2, n).astype(np.uint8)
        code = ConvolutionalCode((7, 5), 3)
        np.testing.assert_array_equal(code.decode(code.encode(bits), n), bits)
