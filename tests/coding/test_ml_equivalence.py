"""Viterbi = maximum-likelihood: exhaustive equivalence on a small code.

The strongest correctness check a Viterbi decoder can get: for every
(short) received word, the decoder's output must achieve the same
codeword metric as brute-force maximum-likelihood search over all
2^k messages.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import ConvolutionalCode

CODE = ConvolutionalCode((7, 5), 3)  # K=3, rate 1/2: 4 states, tractable
K = 6  # message bits per exhaustive test


def _all_codewords():
    table = {}
    for bits in itertools.product((0, 1), repeat=K):
        msg = np.asarray(bits, dtype=np.uint8)
        table[bits] = CODE.encode(msg).astype(np.float64)
    return table


_CODEWORDS = _all_codewords()


def _ml_metric(llr):
    """Best correlation metric over all codewords."""
    best = -np.inf
    for cw in _CODEWORDS.values():
        metric = float(np.dot(1.0 - 2.0 * cw, llr))
        best = max(best, metric)
    return best


def _viterbi_metric(llr):
    decoded = CODE.decode(llr, K, soft=True)
    cw = CODE.encode(decoded).astype(np.float64)
    return float(np.dot(1.0 - 2.0 * cw, llr))


class TestMlEquivalence:
    def test_noiseless_all_messages(self):
        """Every clean codeword decodes to itself."""
        for bits, cw in _CODEWORDS.items():
            llr = (1.0 - 2.0 * cw) * 4.0
            decoded = CODE.decode(llr, K, soft=True)
            np.testing.assert_array_equal(decoded, np.asarray(bits, dtype=np.uint8))

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force_ml_property(self, seed):
        """Under arbitrary noise the Viterbi path is an ML codeword."""
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, K).astype(np.uint8)
        cw = CODE.encode(bits).astype(np.float64)
        y = 1.0 - 2.0 * cw + 1.0 * rng.standard_normal(len(cw))
        llr = 2.0 * y
        assert np.isclose(_viterbi_metric(llr), _ml_metric(llr), atol=1e-9)

    def test_ml_even_for_pure_noise(self):
        """No signal at all: the decoder still returns an ML codeword."""
        rng = np.random.default_rng(7)
        for _ in range(10):
            llr = rng.standard_normal(CODE.encoded_length(K))
            assert np.isclose(_viterbi_metric(llr), _ml_metric(llr), atol=1e-9)
