"""Property tests: ``decode_batch`` is bit-identical to the scalar loop.

The batched burst-processing engine (docs/performance.md) promises that
batching is a pure throughput optimisation -- for every decoder the
batched kernel and a Python loop over the scalar ``decode`` must produce
*identical* bits, not merely equal BER.  These tests sweep block
lengths, code rates and batch sizes with seeded random LLRs, and pin the
two classic tie-sensitive corners:

- **all-erasure** input (all-zero LLRs): every path metric ties, so the
  result is defined purely by the kernel's tie-breaking order;
- **tied-metric** input (quantised LLRs in {-1, 0, +1}): many partial
  ties, exercising ``max``/``argmax`` ordering throughout the trellis.

A batched kernel with a different tie-break than the scalar one passes
random-noise tests with probability ~1 and fails only here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    UMTS_RATE_12,
    UMTS_RATE_13,
    CodingScheme,
    TransportChain,
    TurboCode,
)

CONV_CODES = {"rate12": UMTS_RATE_12, "rate13": UMTS_RATE_13}


def _noisy_llrs(code, rng, nb, nbits, snr=1.0):
    msgs = rng.integers(0, 2, (nb, nbits)).astype(np.uint8)
    enc = np.stack([code.encode(m) for m in msgs])
    return (1.0 - 2.0 * enc) * snr + rng.standard_normal(enc.shape)


class TestConvBatchEquivalence:
    @pytest.mark.parametrize("rate", sorted(CONV_CODES))
    @pytest.mark.parametrize("nbits", [1, 5, 33, 64])
    @pytest.mark.parametrize("nb", [1, 3, 8])
    def test_matches_scalar_loop(self, rate, nbits, nb):
        code = CONV_CODES[rate]
        import zlib

        rng = np.random.default_rng(zlib.crc32(f"{rate}:{nbits}:{nb}".encode()))
        llrs = _noisy_llrs(code, rng, nb, nbits)
        batched = code.decode_batch(llrs, nbits)
        scalar = np.stack(
            [code.decode(llrs[i], nbits, soft=True) for i in range(nb)]
        )
        np.testing.assert_array_equal(batched, scalar)

    @pytest.mark.parametrize("rate", sorted(CONV_CODES))
    def test_all_erasure(self, rate):
        """All-zero LLRs: every metric ties; tie-break must agree."""
        code = CONV_CODES[rate]
        nbits, nb = 24, 4
        llrs = np.zeros((nb, code.encoded_length(nbits) // code.n_out, code.n_out))
        llrs = llrs.reshape(nb, -1)
        batched = code.decode_batch(llrs, nbits)
        scalar = np.stack(
            [code.decode(llrs[i], nbits, soft=True) for i in range(nb)]
        )
        np.testing.assert_array_equal(batched, scalar)

    @pytest.mark.parametrize("rate", sorted(CONV_CODES))
    def test_tied_metric_llrs(self, rate):
        """Quantised +-1/0 LLRs create systematic metric ties."""
        code = CONV_CODES[rate]
        nbits, nb = 40, 6
        rng = np.random.default_rng(1234)
        llrs = rng.integers(-1, 2, (nb, code.encoded_length(nbits))).astype(
            np.float64
        )
        batched = code.decode_batch(llrs, nbits)
        scalar = np.stack(
            [code.decode(llrs[i], nbits, soft=True) for i in range(nb)]
        )
        np.testing.assert_array_equal(batched, scalar)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        nbits=st.integers(1, 80),
        nb=st.integers(1, 5),
    )
    def test_property_random_blocks(self, seed, nbits, nb):
        code = UMTS_RATE_13
        rng = np.random.default_rng(seed)
        llrs = _noisy_llrs(code, rng, nb, nbits)
        batched = code.decode_batch(llrs, nbits)
        scalar = np.stack(
            [code.decode(llrs[i], nbits, soft=True) for i in range(nb)]
        )
        np.testing.assert_array_equal(batched, scalar)


class TestTurboBatchEquivalence:
    @pytest.mark.parametrize("k", [40, 64, 100])
    @pytest.mark.parametrize("nb", [1, 4])
    def test_matches_scalar_loop(self, k, nb):
        tc = TurboCode(k, iterations=3)
        rng = np.random.default_rng(k * 31 + nb)
        llrs = _noisy_llrs(tc, rng, nb, k, snr=2.0)
        np.testing.assert_array_equal(
            tc.decode_batch(llrs),
            np.stack([tc.decode(llrs[i]) for i in range(nb)]),
        )

    def test_all_erasure(self):
        tc = TurboCode(40, iterations=2)
        llrs = np.zeros((3, tc.encoded_length))
        np.testing.assert_array_equal(
            tc.decode_batch(llrs),
            np.stack([tc.decode(llrs[i]) for i in range(3)]),
        )

    def test_tied_metric_llrs(self):
        tc = TurboCode(48, iterations=3)
        rng = np.random.default_rng(99)
        llrs = rng.integers(-1, 2, (4, tc.encoded_length)).astype(np.float64)
        np.testing.assert_array_equal(
            tc.decode_batch(llrs),
            np.stack([tc.decode(llrs[i]) for i in range(4)]),
        )

    def test_iteration_traces_match(self):
        """return_iterations: per-iteration hard decisions also agree."""
        tc = TurboCode(40, iterations=3)
        rng = np.random.default_rng(5)
        llrs = _noisy_llrs(tc, rng, 2, 40, snr=0.7)
        _, batched_iters = tc.decode_batch(llrs, return_iterations=True)
        for i in range(2):
            _, scalar_iters = tc.decode(llrs[i], return_iterations=True)
            for bi, si in zip(batched_iters, scalar_iters):
                np.testing.assert_array_equal(np.asarray(bi)[i], np.asarray(si))


class TestTransportChainBatchEquivalence:
    @pytest.mark.parametrize("scheme", list(CodingScheme))
    @pytest.mark.parametrize("physical_bits", [None, 512])
    def test_matches_scalar_loop(self, scheme, physical_bits):
        chain = TransportChain(
            scheme,
            transport_block=100,
            physical_bits=physical_bits,
            turbo_iterations=3,
        )
        rng = np.random.default_rng(7 * (1 + list(CodingScheme).index(scheme)))
        nb = 3
        msgs = rng.integers(0, 2, (nb, 100)).astype(np.uint8)
        enc = np.stack([chain.encode(m) for m in msgs])
        llrs = (1.0 - 2.0 * enc) * 2.0 + 0.5 * rng.standard_normal(enc.shape)
        batched = chain.decode_batch(llrs)
        for i in range(nb):
            scalar = chain.decode(llrs[i])
            np.testing.assert_array_equal(batched["bits"][i], scalar["bits"])
            assert bool(batched["crc_ok"][i]) == bool(scalar["crc_ok"])
            assert scalar["crc_ok"], f"clean-channel block {i} failed CRC"
            np.testing.assert_array_equal(scalar["bits"], msgs[i])

    def test_all_erasure(self):
        chain = TransportChain(
            CodingScheme.CONVOLUTIONAL, transport_block=50, physical_bits=512
        )
        llrs = np.zeros((2, 512))
        batched = chain.decode_batch(llrs)
        for i in range(2):
            scalar = chain.decode(llrs[i])
            np.testing.assert_array_equal(batched["bits"][i], scalar["bits"])
            assert bool(batched["crc_ok"][i]) == bool(scalar["crc_ok"])


class TestModemBatchEquivalence:
    @pytest.mark.parametrize("order", [2, 4, 8])
    def test_demod_batch_matches_rows(self, order):
        from repro.dsp.modem import PskModem

        m = PskModem(order)
        rng = np.random.default_rng(order)
        nb, nsym = 5, 32
        syms = (
            rng.standard_normal((nb, nsym)) + 1j * rng.standard_normal((nb, nsym))
        )
        hard = m.demodulate_hard(syms)
        soft = m.demodulate_soft(syms, noise_var=0.5)
        for i in range(nb):
            np.testing.assert_array_equal(hard[i], m.demodulate_hard(syms[i]))
            np.testing.assert_allclose(
                soft[i], m.demodulate_soft(syms[i], noise_var=0.5), rtol=1e-12
            )
