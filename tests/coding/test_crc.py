"""Tests for the TS 25.212 CRC implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import CRC8, CRC12, CRC16, CRC24, Crc
from repro.coding.crc import crc32_bytes

ALL_CRCS = [CRC8, CRC12, CRC16, CRC24]


@pytest.mark.parametrize("crc", ALL_CRCS, ids=lambda c: c.name)
class TestUmtsCrcs:
    def test_attach_check_roundtrip(self, crc):
        rng = np.random.default_rng(1)
        msg = rng.integers(0, 2, 100).astype(np.uint8)
        assert crc.check(crc.attach(msg))

    def test_single_bit_error_detected(self, crc):
        rng = np.random.default_rng(2)
        msg = rng.integers(0, 2, 64).astype(np.uint8)
        frame = crc.attach(msg)
        for pos in range(0, len(frame), 7):
            bad = frame.copy()
            bad[pos] ^= 1
            assert not crc.check(bad), f"missed single-bit error at {pos}"

    def test_burst_error_detected(self, crc):
        """CRC-w detects all bursts of length <= w."""
        rng = np.random.default_rng(3)
        msg = rng.integers(0, 2, 128).astype(np.uint8)
        frame = crc.attach(msg)
        for start in range(0, len(frame) - crc.width, 11):
            bad = frame.copy()
            bad[start : start + crc.width] ^= 1
            assert not crc.check(bad)

    def test_parity_width(self, crc):
        parity = crc.compute(np.zeros(10, dtype=np.uint8))
        assert len(parity) == crc.width

    def test_linearity(self, crc):
        """crc(a ^ b) == crc(a) ^ crc(b) for equal-length messages."""
        rng = np.random.default_rng(4)
        a = rng.integers(0, 2, 50).astype(np.uint8)
        b = rng.integers(0, 2, 50).astype(np.uint8)
        lhs = crc.compute(a ^ b)
        rhs = crc.compute(a) ^ crc.compute(b)
        np.testing.assert_array_equal(lhs, rhs)


class TestCrcGeneric:
    def test_zero_message_zero_crc(self):
        np.testing.assert_array_equal(
            CRC16.compute(np.zeros(32, dtype=np.uint8)), np.zeros(16, dtype=np.uint8)
        )

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Crc(0x3, 0)

    def test_poly_width_validation(self):
        with pytest.raises(ValueError):
            Crc(0x1FFFF, 16)

    def test_short_frame_rejected(self):
        with pytest.raises(ValueError):
            CRC16.check(np.zeros(8, dtype=np.uint8))

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, bits):
        msg = np.asarray(bits, dtype=np.uint8)
        assert CRC16.check(CRC16.attach(msg))

    @given(
        st.lists(st.integers(0, 1), min_size=8, max_size=100),
        st.integers(min_value=0, max_value=107),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_single_flip_detected_property(self, bits, pos):
        msg = np.asarray(bits, dtype=np.uint8)
        frame = CRC8.attach(msg)
        bad = frame.copy()
        bad[pos % len(frame)] ^= 1
        assert not CRC8.check(bad)

    def test_crc32_bytes_known_value(self):
        assert crc32_bytes(b"123456789") == 0xCBF43926

    def test_crc32_bytes_differs_on_corruption(self):
        assert crc32_bytes(b"hello") != crc32_bytes(b"hellp")
