"""Tests for the UMTS turbo code and its internal interleaver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import TurboCode, umts_turbo_interleaver
from repro.dsp.modem import ebn0_to_sigma, theoretical_ber_bpsk


class TestInterleaver:
    @pytest.mark.parametrize(
        "k", [40, 57, 159, 160, 200, 201, 320, 480, 481, 530, 531, 1000, 2281, 2480, 3161, 5114]
    )
    def test_bijective(self, k):
        pi = umts_turbo_interleaver(k)
        assert len(pi) == k
        assert len(np.unique(pi)) == k
        assert pi.min() == 0 and pi.max() == k - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            umts_turbo_interleaver(39)
        with pytest.raises(ValueError):
            umts_turbo_interleaver(5115)

    @pytest.mark.parametrize("k", [64, 320, 1000])
    def test_spreading(self, k):
        """Adjacent input bits must land far apart (the point of the design)."""
        pi = umts_turbo_interleaver(k)
        inv = np.argsort(pi)
        gaps = np.abs(np.diff(inv))
        assert np.median(gaps) > k / 25

    @given(st.integers(min_value=40, max_value=600))
    @settings(max_examples=40, deadline=None)
    def test_bijective_property(self, k):
        pi = umts_turbo_interleaver(k)
        assert len(np.unique(pi)) == k


class TestTurboCodec:
    def test_encoded_length_and_rate(self):
        tc = TurboCode(320)
        assert tc.encoded_length == 3 * 320 + 12
        assert np.isclose(tc.rate, 320 / 972)

    def test_noiseless_roundtrip(self):
        rng = np.random.default_rng(0)
        tc = TurboCode(160, iterations=4)
        bits = rng.integers(0, 2, 160).astype(np.uint8)
        llr = (1.0 - 2.0 * tc.encode(bits)) * 8.0
        np.testing.assert_array_equal(tc.decode(llr), bits)

    def test_systematic_part_is_message(self):
        rng = np.random.default_rng(1)
        tc = TurboCode(100)
        bits = rng.integers(0, 2, 100).astype(np.uint8)
        code = tc.encode(bits)
        np.testing.assert_array_equal(code[0 : 300 : 3], bits)

    def test_termination_tail_present(self):
        tc = TurboCode(40)
        code = tc.encode(np.ones(40, dtype=np.uint8))
        assert len(code) == 132

    def test_block_length_validation(self):
        with pytest.raises(ValueError):
            TurboCode(20)
        with pytest.raises(ValueError):
            TurboCode(100, iterations=0)

    def test_llr_length_validation(self):
        tc = TurboCode(40)
        with pytest.raises(ValueError):
            tc.decode(np.zeros(10))

    def test_corrects_noise_below_conv_threshold(self):
        """At 2 dB the turbo code must decode error-free blocks mostly."""
        rng = np.random.default_rng(2)
        tc = TurboCode(320, iterations=6)
        sigma = ebn0_to_sigma(2.0, 1, code_rate=tc.rate)
        errors = 0
        total = 0
        for _ in range(10):
            bits = rng.integers(0, 2, 320).astype(np.uint8)
            x = 1.0 - 2.0 * tc.encode(bits).astype(float)
            y = x + sigma * rng.standard_normal(len(x))
            dec = tc.decode(2 * y / sigma**2)
            errors += np.count_nonzero(dec != bits)
            total += 320
        ber = errors / total
        assert ber < 0.05 * theoretical_ber_bpsk(2.0)

    def test_iterations_improve_decisions(self):
        """Across a batch of noisy blocks, late iterations beat iteration 1."""
        rng = np.random.default_rng(3)
        tc = TurboCode(256, iterations=6)
        sigma = ebn0_to_sigma(0.8, 1, code_rate=tc.rate)
        first = last = 0
        for _ in range(8):
            bits = rng.integers(0, 2, 256).astype(np.uint8)
            x = 1.0 - 2.0 * tc.encode(bits).astype(float)
            y = x + sigma * rng.standard_normal(len(x))
            _, history = tc.decode(2 * y / sigma**2, return_iterations=True)
            first += np.count_nonzero(history[0] != bits)
            last += np.count_nonzero(history[-1] != bits)
        assert last <= first

    @given(st.integers(min_value=40, max_value=120))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_property(self, k):
        rng = np.random.default_rng(k)
        tc = TurboCode(k, iterations=3)
        bits = rng.integers(0, 2, k).astype(np.uint8)
        llr = (1.0 - 2.0 * tc.encode(bits)) * 6.0
        np.testing.assert_array_equal(tc.decode(llr), bits)
