"""Tests for the CCSDS BCH(63,56) TC channel code and CLTU framing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.bch import (
    BchError,
    bch_decode,
    bch_encode,
    decode_cltu,
    encode_cltu,
)


class TestBchCodeblock:
    def test_clean_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, 56).astype(np.uint8)
        out, status = bch_decode(bch_encode(data))
        np.testing.assert_array_equal(out, data)
        assert status == "ok"

    def test_every_single_error_corrected(self):
        """SEC: any one of the 63 positions flips and corrects."""
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, 56).astype(np.uint8)
        cb = bch_encode(data)
        for pos in range(63):
            bad = cb.copy()
            bad[pos] ^= 1
            out, status = bch_decode(bad)
            np.testing.assert_array_equal(out, data)
            assert status == "corrected"

    def test_double_errors_mostly_detected(self):
        """TED: double errors must never be silently mis-decoded to a
        wrong *valid* correction of the data bits (sampled check)."""
        rng = np.random.default_rng(2)
        data = rng.integers(0, 2, 56).astype(np.uint8)
        cb = bch_encode(data)
        silent_wrong = 0
        trials = 0
        for a in range(0, 63, 5):
            for b in range(a + 1, 63, 7):
                bad = cb.copy()
                bad[a] ^= 1
                bad[b] ^= 1
                trials += 1
                try:
                    out, _ = bch_decode(bad)
                    if not np.array_equal(out, data):
                        silent_wrong += 1
                except BchError:
                    pass
        # the (63,56) Hamming-type code miscorrects doubles; what matters
        # is that a large fraction is flagged or that CRC16 upstream
        # catches the rest -- here we just require the decoder never
        # crashes and flags at least some
        assert trials > 50
        assert silent_wrong < trials  # not everything slips through

    def test_length_validation(self):
        with pytest.raises(ValueError):
            bch_encode(np.zeros(10, dtype=np.uint8))
        with pytest.raises(ValueError):
            bch_decode(np.zeros(10, dtype=np.uint8))

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, 56).astype(np.uint8)
        out, status = bch_decode(bch_encode(data))
        np.testing.assert_array_equal(out, data)
        assert status == "ok"


class TestCltu:
    def test_roundtrip(self):
        payload = bytes(range(256))
        got, corrected = decode_cltu(encode_cltu(payload))
        assert got == payload
        assert corrected == 0

    def test_empty_payload(self):
        got, _ = decode_cltu(encode_cltu(b""))
        assert got == b""

    def test_single_error_per_block_corrected(self):
        payload = b"telecommand data" * 10
        bits = encode_cltu(payload)
        for i in range(0, len(bits), 63):
            bits[i + (i // 63) % 63] ^= 1
        got, corrected = decode_cltu(bits)
        assert got == payload
        assert corrected == len(bits) // 63

    def test_bad_length_rejected(self):
        with pytest.raises(BchError):
            decode_cltu(np.zeros(64, dtype=np.uint8))

    def test_padding_stripped_exactly(self):
        for size in (1, 6, 7, 8, 20, 55, 56):
            payload = bytes(range(size % 256))[:size]
            got, _ = decode_cltu(encode_cltu(payload))
            assert got == payload, size

    @given(st.binary(min_size=0, max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, payload):
        got, _ = decode_cltu(encode_cltu(payload))
        assert got == payload
