"""Tests for block interleaving, rate matching and the UMTS chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    BlockInterleaver,
    CodingScheme,
    SCHEMES,
    TransportChain,
    rate_dematch,
    rate_match,
)
from repro.coding.interleaving import UMTS_2ND_PERM
from repro.dsp.modem import ebn0_to_sigma


class TestBlockInterleaver:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        il = BlockInterleaver(30, UMTS_2ND_PERM)
        x = rng.integers(0, 2, 247).astype(np.uint8)
        np.testing.assert_array_equal(il.deinterleave(il.interleave(x)), x)

    def test_is_permutation(self):
        il = BlockInterleaver(30, UMTS_2ND_PERM)
        idx = il.indices(100)
        assert len(np.unique(idx)) == 100

    def test_identity_permutation_default(self):
        il = BlockInterleaver(4)
        x = np.arange(8)
        # row-major write, column-major read
        np.testing.assert_array_equal(il.interleave(x), [0, 4, 1, 5, 2, 6, 3, 7])

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockInterleaver(0)
        with pytest.raises(ValueError):
            BlockInterleaver(3, (0, 0, 1))

    @given(st.integers(min_value=1, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_length_property(self, n):
        il = BlockInterleaver(30, UMTS_2ND_PERM)
        x = np.arange(n)
        np.testing.assert_array_equal(il.deinterleave(il.interleave(x)), x)


class TestRateMatching:
    def test_identity_when_sizes_match(self):
        x = np.arange(50)
        np.testing.assert_array_equal(rate_match(x, 50), x)

    def test_puncture_size(self):
        assert len(rate_match(np.arange(100), 80)) == 80

    def test_repeat_size(self):
        assert len(rate_match(np.arange(100), 130)) == 130

    def test_puncturing_even_spread(self):
        """Punctured positions must be spread, not clustered."""
        kept = rate_match(np.arange(100), 75)
        gaps = np.diff(kept)
        assert gaps.max() <= 3

    def test_dematch_restores_length(self):
        soft = np.ones(80)
        out = rate_dematch(soft, 100)
        assert len(out) == 100
        assert np.count_nonzero(out == 0) == 20  # erasures

    def test_dematch_combines_repeats(self):
        x = np.arange(10, dtype=float)
        tx = rate_match(x, 15)
        back = rate_dematch(np.ones(15), 10)
        # every position got at least one observation; repeats got 2
        assert back.min() >= 1.0
        assert back.sum() == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            rate_match(np.array([]), 10)

    @given(
        st.integers(min_value=10, max_value=200),
        st.integers(min_value=10, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_sizes_always_exact_property(self, n_in, n_out):
        out = rate_match(np.arange(n_in), n_out)
        assert len(out) == n_out
        back = rate_dematch(np.ones(n_out), n_in)
        assert len(back) == n_in


class TestTransportChain:
    @pytest.mark.parametrize("scheme", list(CodingScheme))
    def test_clean_roundtrip(self, scheme):
        rng = np.random.default_rng(1)
        ch = TransportChain(scheme, transport_block=100)
        bits = rng.integers(0, 2, 100).astype(np.uint8)
        llr = (1.0 - 2.0 * ch.encode(bits)) * 5.0
        out = ch.decode(llr)
        np.testing.assert_array_equal(out["bits"], bits)
        assert out["crc_ok"] is True

    def test_crc_flags_corruption(self):
        rng = np.random.default_rng(2)
        ch = TransportChain(CodingScheme.NONE, transport_block=64)
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        llr = (1.0 - 2.0 * ch.encode(bits)) * 5.0
        llr[5] = -llr[5]  # flip one uncoded bit
        out = ch.decode(llr)
        assert out["crc_ok"] is False

    def test_rate_matching_to_physical_bits(self):
        ch = TransportChain(
            CodingScheme.CONVOLUTIONAL, transport_block=100, physical_bits=300
        )
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 100).astype(np.uint8)
        tx = ch.encode(bits)
        assert len(tx) == 300  # punctured from 372
        out = ch.decode((1.0 - 2.0 * tx) * 5.0)
        np.testing.assert_array_equal(out["bits"], bits)

    def test_no_crc_mode(self):
        ch = TransportChain(CodingScheme.NONE, transport_block=32, crc=None)
        bits = np.ones(32, dtype=np.uint8)
        out = ch.decode((1.0 - 2.0 * ch.encode(bits)) * 3.0)
        assert out["crc_ok"] is None
        np.testing.assert_array_equal(out["bits"], bits)

    def test_effective_rate_ordering(self):
        """Uncoded > convolutional ~ turbo in rate."""
        rates = {
            s: TransportChain(s, transport_block=200).effective_rate
            for s in CodingScheme
        }
        assert rates[CodingScheme.NONE] > rates[CodingScheme.CONVOLUTIONAL]
        assert rates[CodingScheme.NONE] > rates[CodingScheme.TURBO]

    def test_coded_beats_uncoded_at_low_snr(self):
        """The paper's QoS point: coding schemes trade rate for robustness."""
        rng = np.random.default_rng(4)
        ebn0 = 3.0
        results = {}
        for scheme in (CodingScheme.NONE, CodingScheme.CONVOLUTIONAL):
            ch = TransportChain(scheme, transport_block=200)
            sigma = ebn0_to_sigma(ebn0, 1, code_rate=ch.effective_rate)
            errors = 0
            for _ in range(10):
                bits = rng.integers(0, 2, 200).astype(np.uint8)
                x = 1.0 - 2.0 * ch.encode(bits).astype(float)
                y = x + sigma * rng.standard_normal(len(x))
                out = ch.decode(2 * y / sigma**2)
                errors += np.count_nonzero(out["bits"] != bits)
            results[scheme] = errors
        assert results[CodingScheme.CONVOLUTIONAL] < results[CodingScheme.NONE]

    def test_schemes_registry(self):
        assert set(SCHEMES) == set(CodingScheme)
        assert SCHEMES[CodingScheme.TURBO].nominal_rate == pytest.approx(1 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransportChain(CodingScheme.NONE, transport_block=0)
        ch = TransportChain(CodingScheme.NONE, transport_block=10)
        with pytest.raises(ValueError):
            ch.encode(np.zeros(5, dtype=np.uint8))
        with pytest.raises(ValueError):
            ch.decode(np.zeros(5))
