"""Property-based kernel tests: seeded random schedules over composites.

``hypothesis`` is deliberately not a dependency; instead each property is
exercised against a family of pseudo-random schedules drawn from
``random.Random(seed)`` for a spread of seeds.  The properties:

- :class:`AnyOf` fires exactly at the minimum of its members' delays and
  only same-instant members appear in its value dict;
- :class:`AllOf` fires exactly at the maximum and carries every value;
- nested composites reduce like min/max expressions;
- triggering an event twice (succeed/succeed, succeed/fail, fail/any)
  raises :class:`SimulatorError`;
- interrupts land at the interrupting event's time with their cause, and
  interrupting a dead process raises;
- completion order of a random schedule is a pure function of the seed
  (FIFO among equal timestamps).
"""

import random

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    Simulator,
    SimulatorError,
)

SEEDS = range(8)


def random_delays(seed, n=None, lo=0.0, hi=10.0):
    r = random.Random(seed)
    n = n or r.randint(2, 12)
    # round to a grid so equal-timestamp ties actually occur sometimes
    return [round(r.uniform(lo, hi), 1) for _ in range(n)]


class TestAnyOfProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fires_at_min_delay(self, seed):
        sim = Simulator()
        delays = random_delays(seed)
        events = [sim.timeout(d, value=i) for i, d in enumerate(delays)]
        got = {}

        def waiter(sim):
            got["result"] = yield AnyOf(sim, events)
            got["t"] = sim.now

        sim.process(waiter(sim))
        sim.run()
        assert got["t"] == min(delays)
        # every event reported by the composite fired at that same instant
        assert got["result"]  # at least the winner
        for ev, val in got["result"].items():
            assert delays[val] == min(delays)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_empty_anyof_fires_immediately(self, seed):
        sim = Simulator(start_time=float(seed))
        got = {}

        def waiter(sim):
            got["result"] = yield AnyOf(sim, [])
            got["t"] = sim.now

        sim.process(waiter(sim))
        sim.run()
        assert got["result"] == {}
        assert got["t"] == float(seed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_failure_propagates(self, seed):
        sim = Simulator()
        r = random.Random(seed)
        boom_at = round(r.uniform(0.0, 5.0), 2)
        ok = sim.timeout(boom_at + 1.0)
        bad = sim.event()
        bad.fail(RuntimeError("boom"), delay=boom_at)
        caught = {}

        def waiter(sim):
            try:
                yield AnyOf(sim, [ok, bad])
            except RuntimeError as exc:
                caught["exc"] = exc
                caught["t"] = sim.now

        sim.process(waiter(sim))
        sim.run()
        assert str(caught["exc"]) == "boom"
        assert caught["t"] == boom_at


class TestAllOfProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fires_at_max_delay_with_all_values(self, seed):
        sim = Simulator()
        delays = random_delays(seed)
        events = [sim.timeout(d, value=i) for i, d in enumerate(delays)]
        got = {}

        def waiter(sim):
            got["result"] = yield AllOf(sim, events)
            got["t"] = sim.now

        sim.process(waiter(sim))
        sim.run()
        assert got["t"] == max(delays)
        assert len(got["result"]) == len(events)
        for ev, val in got["result"].items():
            assert events[val] is ev

    @pytest.mark.parametrize("seed", SEEDS)
    def test_nested_composites_reduce_like_min_max(self, seed):
        sim = Simulator()
        r = random.Random(seed)
        group_a = [round(r.uniform(0, 10), 1) for _ in range(r.randint(1, 5))]
        group_b = [round(r.uniform(0, 10), 1) for _ in range(r.randint(1, 5))]
        comp = AnyOf(
            sim,
            [
                AllOf(sim, [sim.timeout(d) for d in group_a]),
                AllOf(sim, [sim.timeout(d) for d in group_b]),
            ],
        )
        got = {}

        def waiter(sim):
            yield comp
            got["t"] = sim.now

        sim.process(waiter(sim))
        sim.run()
        assert got["t"] == min(max(group_a), max(group_b))


class TestDoubleTrigger:
    def test_succeed_twice_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulatorError):
            ev.succeed(2)

    def test_succeed_then_fail_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulatorError):
            ev.fail(RuntimeError("late"))

    def test_fail_then_succeed_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(RuntimeError("x"))
        with pytest.raises(SimulatorError):
            ev.succeed()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_second_trigger_always_raises(self, seed):
        r = random.Random(seed)
        sim = Simulator()
        ev = sim.event()
        first = r.choice(["succeed", "fail"])
        second = r.choice(["succeed", "fail"])
        getattr(ev, first)(*([RuntimeError("a")] if first == "fail" else []))
        with pytest.raises(SimulatorError):
            getattr(ev, second)(*([RuntimeError("b")] if second == "fail" else []))


class TestInterruptProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_interrupt_lands_at_interrupt_time_with_cause(self, seed):
        r = random.Random(seed)
        sleep_for = round(r.uniform(5.0, 10.0), 2)
        poke_at = round(r.uniform(0.1, 4.9), 2)
        sim = Simulator()
        got = {}

        def sleeper(sim):
            try:
                yield sim.timeout(sleep_for)
                got["outcome"] = "slept"
            except Interrupt as intr:
                got["outcome"] = "interrupted"
                got["cause"] = intr.cause
                got["t"] = sim.now

        proc = sim.process(sleeper(sim))
        sim.call_at(poke_at, lambda: proc.interrupt(cause=seed))
        sim.run()
        assert got["outcome"] == "interrupted"
        assert got["cause"] == seed
        assert got["t"] == poke_at

    def test_interrupt_after_sleep_does_not_fire(self):
        sim = Simulator()
        got = {}

        def sleeper(sim):
            try:
                yield sim.timeout(1.0)
                got["outcome"] = "slept"
            except Interrupt:  # pragma: no cover
                got["outcome"] = "interrupted"

        proc = sim.process(sleeper(sim))
        sim.run()
        assert got["outcome"] == "slept"
        with pytest.raises(SimulatorError):
            proc.interrupt()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_interrupted_process_can_resume_waiting(self, seed):
        """After catching Interrupt a process may wait again; ordering holds."""
        r = random.Random(seed)
        poke_at = round(r.uniform(0.5, 2.0), 2)
        extra = round(r.uniform(0.5, 2.0), 2)
        sim = Simulator()
        got = {}

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                yield sim.timeout(extra)
                got["t"] = sim.now

        proc = sim.process(sleeper(sim))
        sim.call_at(poke_at, lambda: proc.interrupt())
        sim.run()
        assert got["t"] == pytest.approx(poke_at + extra)


class TestScheduleDeterminism:
    """Completion order is a pure function of the seed (FIFO tie-break)."""

    def _order(self, seed, n=20):
        r = random.Random(seed)
        delays = [round(r.uniform(0.0, 5.0), 1) for _ in range(n)]  # many ties
        sim = Simulator()
        order = []

        def worker(sim, i, d):
            yield sim.timeout(d)
            order.append(i)

        for i, d in enumerate(delays):
            sim.process(worker(sim, i, d), name=f"w{i}")
        sim.run()
        return delays, order

    @pytest.mark.parametrize("seed", SEEDS)
    def test_order_is_reproducible(self, seed):
        d1, o1 = self._order(seed)
        d2, o2 = self._order(seed)
        assert d1 == d2 and o1 == o2

    @pytest.mark.parametrize("seed", SEEDS)
    def test_order_is_sorted_with_fifo_ties(self, seed):
        delays, order = self._order(seed)
        # completion order sorts by (delay, registration index): FIFO
        # among equal timestamps, never reordered by heap internals
        assert order == sorted(range(len(delays)), key=lambda i: (delays[i], i))
