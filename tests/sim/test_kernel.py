"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Simulator,
    SimulatorError,
    Store,
)


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(2.5)
        fired.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert fired == [2.5]
    assert sim.now == 2.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(proc(sim, 3.0, "c"))
    sim.process(proc(sim, 1.0, "a"))
    sim.process(proc(sim, 2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_deterministic():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(10):
        sim.process(proc(sim, tag))
    sim.run()
    assert order == list(range(10))


def test_event_value_passes_through_yield():
    sim = Simulator()
    got = []

    def proc(sim, ev):
        value = yield ev
        got.append(value)

    ev = sim.event()
    sim.process(proc(sim, ev))
    ev.succeed("payload", delay=1.0)
    sim.run()
    assert got == ["payload"]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulatorError):
        ev.succeed(2)
    with pytest.raises(SimulatorError):
        ev.fail(RuntimeError("x"))


def test_event_fail_propagates_into_process():
    sim = Simulator()
    caught = []

    def proc(sim, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = sim.event()
    sim.process(proc(sim, ev))
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_process_join_returns_value():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(1.0)
        return 41

    def parent(sim):
        value = yield sim.process(child(sim))
        results.append(value + 1)

    sim.process(parent(sim))
    sim.run()
    assert results == [42]


def test_process_exception_fails_joiners():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent(sim))
    sim.run()
    assert caught == ["child died"]


def test_interrupt_delivered_with_cause():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(sim, target):
        yield sim.timeout(5.0)
        target.interrupt("wake up")

    target = sim.process(sleeper(sim))
    sim.process(interrupter(sim, target))
    sim.run()
    assert log == [(5.0, "wake up")]


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulatorError):
        p.interrupt()


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    p = sim.process(bad(sim))
    sim.run()
    assert p.processed and not p.ok
    assert isinstance(p.value, SimulatorError)


def test_anyof_fires_on_first():
    sim = Simulator()
    seen = []

    def proc(sim):
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(5.0, value="slow")
        result = yield AnyOf(sim, [t1, t2])
        seen.append((sim.now, list(result.values())))

    sim.process(proc(sim))
    sim.run()
    assert seen == [(1.0, ["fast"])]


def test_allof_waits_for_all():
    sim = Simulator()
    seen = []

    def proc(sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(5.0, value="b")
        result = yield AllOf(sim, [t1, t2])
        seen.append((sim.now, sorted(result.values())))

    sim.process(proc(sim))
    sim.run()
    assert seen == [(5.0, ["a", "b"])]


def test_allof_empty_fires_immediately():
    sim = Simulator()
    done = []

    def proc(sim):
        yield AllOf(sim, [])
        done.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done == [0.0]


def test_store_fifo_order():
    sim = Simulator()
    got = []

    def producer(sim, store):
        for i in range(5):
            yield sim.timeout(1.0)
            yield store.put(i)

    def consumer(sim, store):
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    store = Store(sim)
    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_put():
    sim = Simulator()
    log = []

    def producer(sim, store):
        yield store.put("a")
        log.append(("a-in", sim.now))
        yield store.put("b")
        log.append(("b-in", sim.now))

    def consumer(sim, store):
        yield sim.timeout(10.0)
        item = yield store.get()
        log.append((item, sim.now))

    store = Store(sim, capacity=1)
    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    # "b" could only enter once "a" was consumed at t=10.
    assert ("a-in", 0.0) in log
    assert ("b-in", 10.0) in log


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_run_until_limit_then_continue():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=5.0)
    assert fired == [] and sim.now == 5.0
    sim.run(until=20.0)
    assert fired == [10.0] and sim.now == 20.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulatorError):
        sim.run(until=1.0)


def test_run_until_event_returns_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3.0)
        return "done"

    p = sim.process(child(sim))
    assert sim.run_until_event(p) == "done"


def test_run_until_event_drained_heap_raises():
    sim = Simulator()
    ev = sim.event()  # never triggered
    with pytest.raises(SimulatorError):
        sim.run_until_event(ev)


def test_call_at_runs_function():
    sim = Simulator()
    seen = []
    sim.call_at(7.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.0]


def test_call_at_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulatorError):
        sim.call_at(1.0, lambda: None)
