"""Tests for reproducible named RNG streams."""

import numpy as np

from repro.sim import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(seed=1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_reproducible_across_registries():
    a = RngRegistry(seed=7).stream("channel.awgn").random(8)
    b = RngRegistry(seed=7).stream("channel.awgn").random(8)
    np.testing.assert_array_equal(a, b)


def test_streams_independent_of_creation_order():
    r1 = RngRegistry(seed=3)
    r1.stream("x")
    a = r1.stream("y").random(4)
    r2 = RngRegistry(seed=3)
    b = r2.stream("y").random(4)  # "y" created first here
    np.testing.assert_array_equal(a, b)


def test_different_names_give_different_draws():
    reg = RngRegistry(seed=5)
    a = reg.stream("a").random(16)
    b = reg.stream("b").random(16)
    assert not np.array_equal(a, b)


def test_different_seeds_give_different_draws():
    a = RngRegistry(seed=1).stream("s").random(16)
    b = RngRegistry(seed=2).stream("s").random(16)
    assert not np.array_equal(a, b)


def test_reset_replays_stream():
    reg = RngRegistry(seed=9)
    a = reg.stream("s").random(4)
    reg.reset()
    b = reg.stream("s").random(4)
    np.testing.assert_array_equal(a, b)
