"""Tests for the Resource primitive (shared config-port modeling)."""

import pytest

from repro.sim import Resource, Simulator, SimulatorError


class TestResource:
    def test_immediate_grant_when_free(self):
        sim = Simulator()
        res = Resource(sim)
        log = []

        def proc(sim):
            yield res.acquire()
            log.append(sim.now)
            res.release()

        sim.process(proc(sim))
        sim.run()
        assert log == [0.0]

    def test_serializes_contenders_fifo(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def user(sim, tag, hold):
            yield res.acquire()
            order.append((tag, sim.now))
            yield sim.timeout(hold)
            res.release()

        sim.process(user(sim, "a", 5.0))
        sim.process(user(sim, "b", 3.0))
        sim.process(user(sim, "c", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 5.0), ("c", 8.0)]

    def test_capacity_allows_parallel_holders(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        starts = []

        def user(sim, tag):
            yield res.acquire()
            starts.append((tag, sim.now))
            yield sim.timeout(10.0)
            res.release()

        for tag in ("a", "b", "c"):
            sim.process(user(sim, tag))
        sim.run()
        assert starts == [("a", 0.0), ("b", 0.0), ("c", 10.0)]

    def test_queued_count(self):
        sim = Simulator()
        res = Resource(sim)

        def holder(sim):
            yield res.acquire()
            yield sim.timeout(10.0)
            res.release()

        def waiter(sim):
            yield res.acquire()
            res.release()

        sim.process(holder(sim))
        sim.process(waiter(sim))
        sim.run(until=5.0)
        assert res.queued == 1
        sim.run()
        assert res.queued == 0

    def test_release_without_hold_raises(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(SimulatorError):
            res.release()

    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_shared_config_port_scenario(self):
        """§4.4: several FPGAs behind one configuration port -- reloads
        serialize, and the total time is the sum of the load times."""
        sim = Simulator()
        port = Resource(sim, capacity=1)
        done = []

        def reload(sim, name, load_time):
            yield port.acquire()
            yield sim.timeout(load_time)
            port.release()
            done.append((name, sim.now))

        for k in range(3):
            sim.process(reload(sim, f"fpga{k}", 2.0))
        sim.run()
        assert [t for _n, t in done] == [2.0, 4.0, 6.0]
