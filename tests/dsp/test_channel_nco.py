"""Tests for channel impairments, NCO and DDC."""

import numpy as np
import pytest

from repro.dsp.channel import (
    Multipath,
    SatelliteChannel,
    apply_cfo,
    apply_delay,
    apply_phase_noise,
    awgn,
)
from repro.dsp.nco import Ddc, Nco, mix
from repro.sim import RngRegistry


class TestAwgn:
    def test_zero_sigma_is_identity(self):
        x = np.ones(10, dtype=complex)
        rng = np.random.default_rng(0)
        np.testing.assert_array_equal(awgn(x, 0.0, rng), x)

    def test_noise_power_matches_sigma(self):
        rng = np.random.default_rng(1)
        x = np.zeros(100_000, dtype=complex)
        y = awgn(x, 0.5, rng)
        measured = np.mean(np.abs(y) ** 2)
        assert np.isclose(measured, 2 * 0.25, rtol=0.05)  # 2 sigma^2

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            awgn(np.zeros(4, dtype=complex), -0.1, np.random.default_rng())

    def test_reproducible_with_named_stream(self):
        x = np.zeros(16, dtype=complex)
        a = awgn(x, 1.0, RngRegistry(5).stream("n"))
        b = awgn(x, 1.0, RngRegistry(5).stream("n"))
        np.testing.assert_array_equal(a, b)


class TestCfoAndPhaseNoise:
    def test_cfo_rotates_at_rate(self):
        x = np.ones(100, dtype=complex)
        y = apply_cfo(x, cfo=0.01)
        phases = np.unwrap(np.angle(y))
        np.testing.assert_allclose(np.diff(phases), 2 * np.pi * 0.01, atol=1e-12)

    def test_phase_offset(self):
        y = apply_cfo(np.ones(4, dtype=complex), 0.0, phase=np.pi / 3)
        np.testing.assert_allclose(np.angle(y), np.pi / 3)

    def test_phase_noise_preserves_magnitude(self):
        rng = np.random.default_rng(2)
        x = np.ones(1000, dtype=complex)
        y = apply_phase_noise(x, 1e-4, rng)
        np.testing.assert_allclose(np.abs(y), 1.0, atol=1e-12)

    def test_phase_noise_variance_grows_linearly(self):
        rng = np.random.default_rng(3)
        lw = 1e-5
        n = 20_000
        runs = [
            np.unwrap(np.angle(apply_phase_noise(np.ones(n, dtype=complex), lw, rng)))
            for _ in range(20)
        ]
        var_end = np.var([r[-1] for r in runs])
        expected = 2 * np.pi * lw * n
        assert 0.3 * expected < var_end < 3.0 * expected

    def test_zero_linewidth_identity(self):
        x = np.exp(1j * np.linspace(0, 1, 50))
        y = apply_phase_noise(x, 0.0, np.random.default_rng())
        np.testing.assert_array_equal(y, x)


class TestDelay:
    def test_integer_delay_shifts(self):
        x = np.arange(10, dtype=complex)
        y = apply_delay(x, 3)
        np.testing.assert_allclose(y[3:], x[:7], atol=1e-12)
        np.testing.assert_allclose(y[:3], 0.0)

    def test_fractional_delay_midpoint(self):
        t = np.arange(200)
        x = np.sin(2 * np.pi * 0.01 * t).astype(complex)
        y = apply_delay(x, 0.5)
        expected = np.sin(2 * np.pi * 0.01 * (t - 0.5))
        np.testing.assert_allclose(y[30:-30].real, expected[30:-30], atol=3e-3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            apply_delay(np.zeros(8, dtype=complex), -1.0)


class TestMultipath:
    def test_single_tap_identity(self):
        x = np.arange(5, dtype=complex)
        mp = Multipath()
        np.testing.assert_array_equal(mp.apply(x), x)

    def test_two_ray(self):
        x = np.array([1.0, 0, 0, 0], dtype=complex)
        mp = Multipath(delays=(0, 2), gains=(1.0, 0.5j))
        y = mp.apply(x)
        np.testing.assert_allclose(y, [1.0, 0, 0.5j, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            Multipath(delays=(0, 1), gains=(1.0,))
        with pytest.raises(ValueError):
            Multipath(delays=(-1,), gains=(1.0,))


class TestSatelliteChannel:
    def test_noiseless_passthrough(self):
        x = np.exp(1j * np.linspace(0, 2, 64))
        ch = SatelliteChannel()
        np.testing.assert_array_equal(ch.apply(x), x)

    def test_requires_rng_for_noise(self):
        ch = SatelliteChannel(snr_sigma=0.1)
        with pytest.raises(ValueError):
            ch.apply(np.zeros(8, dtype=complex))

    def test_requires_rng_for_phase_noise(self):
        ch = SatelliteChannel(linewidth=1e-5)
        with pytest.raises(ValueError):
            ch.apply(np.zeros(8, dtype=complex))

    def test_composition_order_cfo_after_delay(self):
        # delay then CFO: a pure tone acquires CFO referenced to output index
        x = np.ones(32, dtype=complex)
        ch = SatelliteChannel(cfo=0.25, delay=1.0)
        y = ch.apply(x)
        # after one-sample delay, y[n] = exp(j 2 pi 0.25 n) for n >= 1
        expected = np.exp(2j * np.pi * 0.25 * np.arange(32))
        np.testing.assert_allclose(y[2:], expected[2:], atol=1e-9)


class TestNco:
    def test_block_continuity(self):
        nco_a = Nco(0.0173)
        y_once = nco_a.generate(100)
        nco_b = Nco(0.0173)
        y_split = np.concatenate([nco_b.generate(37), nco_b.generate(63)])
        np.testing.assert_allclose(y_split, y_once, atol=1e-12)

    def test_mix_then_unmix_identity(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        up = mix(x, 0.07)
        down = mix(up, -0.07)
        np.testing.assert_allclose(down, x, atol=1e-12)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Nco(0.1).generate(-1)


class TestDdc:
    def test_recovers_shifted_tone(self):
        """A tone at fc+df must come out of the DDC as a tone at df."""
        n = 4096
        fc, df = 0.21, 0.01
        x = np.exp(2j * np.pi * (fc + df) * np.arange(n))
        ddc = Ddc(freq=fc, decim=4, num_taps=65)
        y = ddc.process(x)[32:]  # drop transient
        # instantaneous frequency of the output (in decimated-rate cycles)
        inst = np.diff(np.unwrap(np.angle(y))) / (2 * np.pi)
        assert np.allclose(inst, df * 4, atol=1e-6)
        assert np.mean(np.abs(y) ** 2) > 0.9

    def test_rejects_adjacent_carrier(self):
        """A tone one channel away must be crushed by the DDC's LPF."""
        n = 4096
        x = np.exp(2j * np.pi * 0.46 * np.arange(n))
        ddc = Ddc(freq=0.21, decim=4, num_taps=65)
        y = ddc.process(x)[64:]
        assert np.mean(np.abs(y) ** 2) < 1e-3

    def test_invalid_decim(self):
        with pytest.raises(ValueError):
            Ddc(0.1, decim=0)

    def test_streaming_consistency(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal(512) + 1j * rng.standard_normal(512)
        d1 = Ddc(0.1, decim=2)
        y1 = d1.process(x)
        d2 = Ddc(0.1, decim=2)
        y2 = np.concatenate([d2.process(x[:129]), d2.process(x[129:])])
        np.testing.assert_allclose(y2, y1, atol=1e-9)
