"""Gap-filling tests for smaller public APIs."""

import numpy as np
import pytest

from repro.dsp.carrier import DecisionDirectedLoop
from repro.dsp.filters import FirFilter, design_lowpass
from repro.dsp.modem import PskModem
from repro.sim import stream
from repro.sim.rng import RngRegistry


class TestDecisionDirectedLoopOrders:
    @pytest.mark.parametrize("order", [2, 8])
    def test_tracks_static_phase(self, order):
        rng = np.random.default_rng(order)
        m = PskModem(order)
        nbits = 4000 * m.bits_per_symbol
        sym = m.modulate(rng.integers(0, 2, nbits).astype(np.uint8))
        # small offset within the decision region of the constellation
        rx = sym * np.exp(1j * 0.1)
        loop = DecisionDirectedLoop(order=order, bn_ts=0.02)
        out = loop.process(rx)
        core = out[1500:]
        d = np.abs(core[:, None] - m.points[None, :]).min(axis=1)
        assert np.sqrt(np.mean(d**2)) < 0.15

    def test_bpsk_decision_rule(self):
        loop = DecisionDirectedLoop(order=2)
        assert loop._decide(0.9 + 0.1j) == 1.0
        assert loop._decide(-0.3 + 0.2j) == -1.0

    def test_8psk_decision_on_grid(self):
        loop = DecisionDirectedLoop(order=8)
        for k in range(8):
            point = np.exp(1j * 2 * np.pi * k / 8)
            assert abs(loop._decide(point) - point) < 1e-9


class TestModuleLevelRngStream:
    def test_stream_reproducible_with_seed(self):
        a = stream("test.module", seed=123).random(4)
        b = stream("test.module", seed=123).random(4)
        np.testing.assert_array_equal(a, b)

    def test_same_seed_same_registry(self):
        s1 = stream("x", seed=55)
        s2 = stream("x", seed=55)  # registry rebuilt -> fresh stream
        assert s1 is s2 or True  # identity not guaranteed, values are
        np.testing.assert_array_equal(
            stream("y", seed=55).random(3), RngRegistry(55).stream("y").random(3)
        )


class TestFirMisc:
    def test_group_delay(self):
        f = FirFilter(design_lowpass(41, 0.2))
        assert f.group_delay == 20.0

    def test_oneshot_call_does_not_touch_state(self):
        f = FirFilter(design_lowpass(9, 0.3))
        f.process(np.ones(20))
        tail_before = f._tail.copy()
        f(np.zeros(30))
        np.testing.assert_array_equal(f._tail, tail_before)


class TestPsk8Soft:
    def test_8psk_soft_hard_consistency(self):
        rng = np.random.default_rng(3)
        m = PskModem(8)
        bits = rng.integers(0, 2, 300 * 3).astype(np.uint8)
        noisy = m.modulate(bits) + 0.05 * (
            rng.standard_normal(300) + 1j * rng.standard_normal(300)
        )
        llr = m.demodulate_soft(noisy, noise_var=0.005)
        np.testing.assert_array_equal(
            (llr < 0).astype(np.uint8), m.demodulate_hard(noisy)
        )
