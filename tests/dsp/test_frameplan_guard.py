"""Tests for frame-plan guard times and burst windows."""

import numpy as np
import pytest

from repro.dsp.tdma import FramePlan


class TestGuardTimes:
    def test_guard_and_usable_duration(self):
        fp = FramePlan(slots_per_frame=8, frame_duration=0.024, guard_fraction=0.05)
        assert np.isclose(fp.guard_time, 0.003 * 0.05)
        assert np.isclose(fp.usable_slot_duration, 0.003 * 0.9)

    def test_zero_guard(self):
        fp = FramePlan(guard_fraction=0.0)
        assert fp.usable_slot_duration == fp.slot_duration

    def test_guard_validation(self):
        with pytest.raises(ValueError):
            FramePlan(guard_fraction=0.5)
        with pytest.raises(ValueError):
            FramePlan(guard_fraction=-0.1)


class TestBurstWindow:
    def test_window_inside_slot(self):
        fp = FramePlan(slots_per_frame=8, frame_duration=0.024, guard_fraction=0.05)
        rate = 2.048e6
        nsym = 308
        start, end = fp.burst_window(2, rate, nsym)
        slot_start = 2 * fp.slot_duration
        assert start == pytest.approx(slot_start + fp.guard_time)
        assert end - start == pytest.approx(nsym / rate)
        assert end <= slot_start + fp.slot_duration - fp.guard_time + 1e-12

    def test_adjacent_bursts_never_overlap(self):
        """The guard property: consecutive slots' windows are disjoint."""
        fp = FramePlan(slots_per_frame=8, frame_duration=0.024, guard_fraction=0.05)
        rate = 2.048e6
        nsym = fp.max_burst_symbols(rate)
        windows = [fp.burst_window(s, rate, nsym) for s in range(8)]
        for (s0, e0), (s1, e1) in zip(windows, windows[1:]):
            assert e0 < s1  # strict gap = 2 x guard_time

    def test_oversized_burst_rejected(self):
        fp = FramePlan(slots_per_frame=8, frame_duration=0.024)
        rate = 2.048e6
        too_big = fp.max_burst_symbols(rate) + 10
        with pytest.raises(ValueError):
            fp.burst_window(0, rate, too_big)

    def test_max_burst_fits(self):
        fp = FramePlan()
        rate = 2.048e6
        nsym = fp.max_burst_symbols(rate)
        fp.burst_window(0, rate, nsym)  # must not raise

    def test_paper_burst_fits_sumts_slot(self):
        """The default 308-symbol burst fits a 3 ms slot at 2.048 Msym/s."""
        from repro.dsp.tdma import BurstFormat

        fp = FramePlan()
        assert BurstFormat().total <= fp.max_burst_symbols(2.048e6)

    def test_validation(self):
        fp = FramePlan()
        with pytest.raises(ValueError):
            fp.burst_window(99, 1e6, 10)
        with pytest.raises(ValueError):
            fp.burst_window(0, 0.0, 10)
        with pytest.raises(ValueError):
            fp.max_burst_symbols(-1.0)


class TestRelease:
    def test_release_frees_slots(self):
        fp = FramePlan(num_carriers=2, slots_per_frame=2)
        fp.assign("t1", 0, 0)
        fp.assign("t1", 1, 0)
        fp.assign("t2", 0, 1)
        assert fp.release("t1") == 2
        assert fp.occupant(0, 0) is None
        assert fp.occupant(0, 1) == "t2"
        fp.assign("t3", 0, 0)  # slot reusable

    def test_release_unknown_terminal(self):
        fp = FramePlan()
        assert fp.release("ghost") == 0
