"""Property tests: the batched CDMA return-link engine == the scalar path.

The engine (docs/performance.md) follows the batch-as-the-primitive
discipline: ``CdmaModem.receive`` delegates to ``receive_batch`` and
``acquire`` to ``acquire_bank``, so there is exactly one kernel.  What
*can* still break the contract is batch-shape dependence inside the
kernels (a BLAS reduction that reassociates differently for ``(64, sf)``
than for ``(1, sf)``, a broadcast path taken only for ``B > 1``).  These
tests therefore compare multi-row calls against one-row calls -- which
must be **float-identical**, not merely close -- across spreading
factors, oversampling ratios, rake finger counts and the degenerate
corners (undetected acquisition on pure noise, a single-symbol payload,
all-zero bits).
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.cdma import (
    CdmaConfig,
    CdmaModem,
    CdmaReturnBank,
    Dll,
    RakeReceiver,
    acquire,
    acquire_bank,
)

pytestmark = pytest.mark.perf

DIAG_SCALARS = ("phase", "acq_metric", "carrier_lock", "snr_db")


def _rng(*parts) -> np.random.Generator:
    return np.random.default_rng(zlib.crc32(":".join(map(str, parts)).encode()))


def _noisy_stack(modem, rng, nb, num_bits, sigma):
    bursts, sent = [], []
    for _ in range(nb):
        bits = rng.integers(0, 2, num_bits).astype(np.uint8)
        tx = modem.transmit(bits)
        noise = sigma * (
            rng.standard_normal(len(tx)) + 1j * rng.standard_normal(len(tx))
        )
        bursts.append(tx + noise)
        sent.append(bits)
    return np.stack(bursts), sent


def _assert_result_identical(got: dict, ref: dict) -> None:
    """Batched and scalar receive results must be float-identical."""
    np.testing.assert_array_equal(got["bits"], ref["bits"])
    np.testing.assert_array_equal(got["symbols"], ref["symbols"])
    np.testing.assert_array_equal(got["dll_tau"], ref["dll_tau"])
    for key in DIAG_SCALARS:
        assert got[key] == ref[key], key
    ga, ra = got["acquisition"], ref["acquisition"]
    assert (ga.phase, ga.metric, ga.mean_level, ga.detected) == (
        ra.phase,
        ra.metric,
        ra.mean_level,
        ra.detected,
    )
    np.testing.assert_array_equal(ga.statistics, ra.statistics)


class TestReceiveBatchEquivalence:
    @pytest.mark.parametrize("sf", [8, 16, 64])
    @pytest.mark.parametrize("chip_sps", [2, 4])
    def test_stack_matches_per_row(self, sf, chip_sps):
        modem = CdmaModem(CdmaConfig(sf=sf, chip_sps=chip_sps))
        rng = _rng("stack", sf, chip_sps)
        stack, sent = _noisy_stack(modem, rng, nb=5, num_bits=64, sigma=0.1)
        batched = modem.receive_batch(stack, 64)
        for i in range(len(stack)):
            _assert_result_identical(batched[i], modem.receive(stack[i], 64))
        # the scenario really decodes at these operating points
        for i, bits in enumerate(sent):
            np.testing.assert_array_equal(batched[i]["bits"], bits)

    @given(
        sf=st.sampled_from([8, 16, 64]),
        chip_sps=st.sampled_from([2, 4]),
        nb=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_hypothesis_sweep(self, sf, chip_sps, nb, seed):
        modem = CdmaModem(CdmaConfig(sf=sf, chip_sps=chip_sps))
        rng = _rng("hyp", sf, chip_sps, nb, seed)
        stack, _ = _noisy_stack(modem, rng, nb=nb, num_bits=32, sigma=0.2)
        batched = modem.receive_batch(stack, 32)
        for i in range(nb):
            _assert_result_identical(batched[i], modem.receive(stack[i], 32))

    def test_undetected_acquisition_at_low_snr(self):
        """Pure noise: acquisition must report undetected, identically."""
        modem = CdmaModem(CdmaConfig(sf=16))
        rng = _rng("noise-only")
        n = modem.num_tx_samples(64)
        stack = 0.3 * (
            rng.standard_normal((3, n)) + 1j * rng.standard_normal((3, n))
        )
        batched = modem.receive_batch(stack, 64)
        for i in range(3):
            scalar = modem.receive(stack[i], 64)
            assert not scalar["acquisition"].detected
            _assert_result_identical(batched[i], scalar)

    def test_single_symbol_payload(self):
        """num_bits == bits_per_symbol: one data symbol, snr_db is None."""
        modem = CdmaModem(CdmaConfig(sf=8))
        rng = _rng("single-sym")
        stack, sent = _noisy_stack(modem, rng, nb=3, num_bits=2, sigma=0.05)
        batched = modem.receive_batch(stack, 2)
        for i in range(3):
            scalar = modem.receive(stack[i], 2)
            assert scalar["snr_db"] is None
            _assert_result_identical(batched[i], scalar)
            np.testing.assert_array_equal(batched[i]["bits"], sent[i])

    def test_all_zero_bits(self):
        """A constant payload leaves no symbol transitions to lean on."""
        modem = CdmaModem(CdmaConfig(sf=16))
        rng = _rng("zeros")
        zeros = np.zeros(64, dtype=np.uint8)
        tx = modem.transmit(zeros)
        stack = np.stack(
            [
                tx
                + 0.05
                * (
                    rng.standard_normal(len(tx))
                    + 1j * rng.standard_normal(len(tx))
                )
                for _ in range(3)
            ]
        )
        batched = modem.receive_batch(stack, 64)
        for i in range(3):
            _assert_result_identical(batched[i], modem.receive(stack[i], 64))
            np.testing.assert_array_equal(batched[i]["bits"], zeros)

    def test_batch_shape_invariance(self):
        """The same burst in a B=1 and a B=7 stack: identical floats."""
        modem = CdmaModem(CdmaConfig(sf=16))
        rng = _rng("shape-invariance")
        stack, _ = _noisy_stack(modem, rng, nb=7, num_bits=64, sigma=0.1)
        wide = modem.receive_batch(stack, 64)
        for i in range(7):
            narrow = modem.receive_batch(stack[i : i + 1], 64)[0]
            _assert_result_identical(wide[i], narrow)


class TestAcquireBankEquivalence:
    @pytest.mark.parametrize("sf", [8, 16, 64])
    def test_bank_matches_per_code(self, sf):
        rng = _rng("acq", sf)
        codes = np.stack(
            [
                CdmaConfig(sf=sf, scrambling_shift=u).spreading_code()
                for u in range(4)
            ]
        )
        chips = np.tile(codes[1].astype(np.complex128), 4)
        chips = chips + 0.2 * (
            rng.standard_normal(len(chips)) + 1j * rng.standard_normal(len(chips))
        )
        banked = acquire_bank(chips, codes, coherent_symbols=4)
        for u in range(4):
            single = acquire(chips, codes[u], coherent_symbols=4)
            assert banked[u].phase == single.phase
            assert banked[u].metric == single.metric
            assert banked[u].mean_level == single.mean_level
            assert banked[u].detected == single.detected
            np.testing.assert_array_equal(
                banked[u].statistics, single.statistics
            )

    def test_rotated_code_found_at_right_phase(self):
        code = CdmaConfig(sf=32).spreading_code()
        rx = np.tile(np.roll(code, 7).astype(np.complex128), 6)
        res = acquire_bank(rx, code[None, :], coherent_symbols=6)[0]
        assert res.detected and res.phase == 7


class TestRakeGemmEquivalence:
    @pytest.mark.parametrize("num_fingers", [1, 2, 3, 4])
    def test_gemm_matches_naive_interpolation(self, num_fingers):
        """despread_fingers == an independent per-symbol reimplementation."""
        sf, sps, nsym = 16, 4, 12
        code = CdmaConfig(sf=sf).spreading_code()
        rng = _rng("rake", num_fingers)
        n = (nsym + sf) * sf * sps
        mf = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        rake = RakeReceiver(code, sps=sps, max_fingers=num_fingers)
        rake.finger_phases = list(range(num_fingers))
        base = 11.0
        got = rake.despread_fingers(mf, base, nsym)
        assert got.shape == (num_fingers, nsym)
        for f, phase in enumerate(rake.finger_phases):
            for k in range(nsym):
                start = base + phase * sps + k * sf * sps
                idx = start + np.arange(sf) * sps
                lo = np.floor(idx).astype(np.int64)
                frac = idx - lo
                samples = mf[lo] * (1.0 - frac) + mf[lo + 1] * frac
                ref = np.sum(samples * code) / sf
                assert got[f, k] == complex(ref)

    def test_scalar_dll_settled_matches_kernel(self):
        """Dll(gain=0).process goes through the same settled kernel."""
        sf, sps, nsym = 8, 4, 6
        code = CdmaConfig(sf=sf).spreading_code()
        rng = _rng("dll-settled")
        n = (nsym + 2) * sf * sps
        mf = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        dll = Dll(code, sps=sps, gain=0.0)
        out = dll.process(mf, 3.0, nsym)
        rake = RakeReceiver(code, sps=sps)
        rake.finger_phases = [0]
        np.testing.assert_array_equal(out, rake.despread_fingers(mf, 3.0, nsym)[0])


class TestReturnBankEquivalence:
    @pytest.mark.parametrize("users", [1, 2, 4])
    def test_bank_matches_per_user_scalar(self, users):
        bank = CdmaReturnBank.for_users(users, CdmaConfig(sf=32))
        rng = _rng("bank", users)
        sent = [rng.integers(0, 2, 64).astype(np.uint8) for _ in range(users)]
        comp = bank.transmit(sent)
        comp = comp + 0.05 * (
            rng.standard_normal(len(comp)) + 1j * rng.standard_normal(len(comp))
        )
        banked = bank.receive(comp, 64)
        for u in range(users):
            _assert_result_identical(banked[u], bank.modems[u].receive(comp, 64))
            np.testing.assert_array_equal(banked[u]["bits"], sent[u])

    def test_mismatched_front_ends_rejected(self):
        with pytest.raises(ValueError):
            CdmaReturnBank([CdmaConfig(sf=16), CdmaConfig(sf=32)])
        with pytest.raises(ValueError):
            CdmaReturnBank([])
        with pytest.raises(ValueError):
            CdmaReturnBank.for_users(0)

    def test_bank_rejects_burst_stacks(self):
        bank = CdmaReturnBank.for_users(2, CdmaConfig(sf=16))
        with pytest.raises(ValueError):
            bank.receive(np.zeros((2, 4096), dtype=complex), 16)
