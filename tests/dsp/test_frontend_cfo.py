"""Tests for the IF front end and TDMA CFO recovery."""

import numpy as np
import pytest

from repro.dsp.channel import SatelliteChannel
from repro.dsp.frontend import Frontend
from repro.dsp.modem import ebn0_to_sigma
from repro.dsp.nco import mix
from repro.dsp.tdma import TdmaModem
from repro.sim import RngRegistry


class TestFrontend:
    def test_decimation_factor(self):
        assert Frontend(halfband_stages=2).decimation == 4
        assert Frontend(halfband_stages=0).decimation == 1

    def test_recovers_if_signal(self):
        """A narrowband signal at the IF comes out at baseband, decimated."""
        fe = Frontend(if_freq=0.25, halfband_stages=2, agc=False, adc_bits=12)
        n = 8192
        # narrowband baseband reference, then shifted to the IF
        t = np.arange(n)
        bb = 0.5 * np.exp(2j * np.pi * 0.005 * t)
        rx = mix(bb, 0.25)
        y = fe.process(rx)
        # output should be the reference decimated by 4 (up to group delay)
        ref = bb[::4]
        best = 0.0
        for lag in range(0, 20):
            g = y[32 + lag : len(ref) - 32]
            r = ref[32 : len(ref) - 32 - lag]
            m = min(len(g), len(r))
            denom = np.linalg.norm(g[:m]) * np.linalg.norm(r[:m])
            if denom > 0:
                best = max(best, abs(np.vdot(g[:m], r[:m])) / denom)
        assert best > 0.98

    def test_rejects_image_band(self):
        """Energy near the opposite band edge is filtered out."""
        fe = Frontend(if_freq=0.25, halfband_stages=2, agc=False, adc_bits=12)
        n = 8192
        interferer = 0.5 * np.exp(-2j * np.pi * 0.4 * np.arange(n))
        y = fe.process(interferer)
        assert np.mean(np.abs(y[64:]) ** 2) < 1e-3

    def test_agc_normalizes_weak_input(self):
        fe = Frontend(if_freq=0.0, halfband_stages=1, agc=True)
        x = 0.01 * np.exp(2j * np.pi * 0.01 * np.arange(20000))
        y = fe.process(x)
        rms_tail = np.sqrt(np.mean(np.abs(y[-500:]) ** 2))
        assert 0.2 < rms_tail < 0.6  # near the 0.35 target

    def test_streaming_consistency(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(2048) + 1j * rng.standard_normal(2048)
        fe1 = Frontend(if_freq=0.2, halfband_stages=2, agc=False, adc_bits=14)
        y1 = fe1.process(x)
        fe2 = Frontend(if_freq=0.2, halfband_stages=2, agc=False, adc_bits=14)
        y2 = np.concatenate([fe2.process(x[:700]), fe2.process(x[700:])])
        np.testing.assert_allclose(y1, y2, atol=1e-9)

    def test_reset(self):
        fe = Frontend(if_freq=0.2, halfband_stages=1, adc_bits=12)
        fe.process(np.ones(512, dtype=complex))
        fe.reset()
        assert fe.nco.phase == 0.0
        assert fe.agc.gain == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Frontend(halfband_stages=-1)


class TestTdmaCfoRecovery:
    def test_cfo_estimated_and_removed(self):
        reg = RngRegistry(8)
        tm = TdmaModem(cfo_recovery=True)
        bits = reg.stream("b").integers(0, 2, tm.bits_per_burst).astype(np.uint8)
        cfo_per_sample = 2e-4  # cycles/sample -> 8e-4 cycles/symbol
        ch = SatelliteChannel(
            snr_sigma=ebn0_to_sigma(12.0, 2) / np.sqrt(tm.sps),
            cfo=cfo_per_sample,
            phase=0.5,
            rng=reg.stream("n"),
        )
        out = tm.receive(ch.apply(tm.transmit(bits)))
        assert "cfo" in out
        assert abs(out["cfo"] - cfo_per_sample * tm.sps) < 2e-4
        assert np.mean(out["bits"] != bits) < 5e-3

    def test_without_recovery_cfo_destroys_burst(self):
        """The control: the same offset breaks a non-recovering modem."""
        reg = RngRegistry(9)
        tm = TdmaModem(cfo_recovery=False)
        bits = reg.stream("b").integers(0, 2, tm.bits_per_burst).astype(np.uint8)
        ch = SatelliteChannel(cfo=2e-4, rng=reg.stream("n"))
        from repro.dsp.tdma import BurstSyncError

        try:
            out = tm.receive(ch.apply(tm.transmit(bits)))
            ber = np.mean(out["bits"] != bits)
        except BurstSyncError:
            ber = 0.5
        assert ber > 0.05

    def test_zero_cfo_estimate_small(self):
        reg = RngRegistry(10)
        tm = TdmaModem(cfo_recovery=True)
        bits = reg.stream("b").integers(0, 2, tm.bits_per_burst).astype(np.uint8)
        out = tm.receive(tm.transmit(bits))
        assert abs(out["cfo"]) < 5e-5
        np.testing.assert_array_equal(out["bits"], bits)
