"""Tests for PSK modem, ADC/DAC models and link-budget helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.adc import Adc, Dac, quantize
from repro.dsp.modem import (
    PskModem,
    ber,
    count_bit_errors,
    ebn0_to_sigma,
    esn0_from_ebn0,
    theoretical_ber_bpsk,
)


class TestPskRoundtrip:
    @pytest.mark.parametrize("order", [2, 4, 8])
    def test_modulate_demodulate_identity(self, order):
        rng = np.random.default_rng(0)
        m = PskModem(order)
        bits = rng.integers(0, 2, 120 * m.bits_per_symbol).astype(np.uint8)
        np.testing.assert_array_equal(m.demodulate_hard(m.modulate(bits)), bits)

    @pytest.mark.parametrize("order", [2, 4, 8])
    def test_unit_energy(self, order):
        m = PskModem(order)
        assert np.allclose(np.abs(m.points), 1.0)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            PskModem(3)

    def test_bit_count_must_divide(self):
        m = PskModem(4)
        with pytest.raises(ValueError):
            m.modulate(np.array([1, 0, 1], dtype=np.uint8))

    @pytest.mark.parametrize("order", [4, 8])
    def test_gray_mapping_adjacent_points_differ_one_bit(self, order):
        m = PskModem(order)
        angles = np.angle(m.points)
        idx_by_angle = np.argsort(angles)
        labels = m.labels[idx_by_angle]
        for i in range(order):
            a = labels[i]
            b = labels[(i + 1) % order]
            assert np.count_nonzero(a != b) == 1

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, nsym):
        rng = np.random.default_rng(nsym)
        m = PskModem(4)
        bits = rng.integers(0, 2, nsym * 2).astype(np.uint8)
        np.testing.assert_array_equal(m.demodulate_hard(m.modulate(bits)), bits)


class TestSoftDemapping:
    def test_llr_sign_matches_hard_decision(self):
        rng = np.random.default_rng(1)
        m = PskModem(4)
        bits = rng.integers(0, 2, 400).astype(np.uint8)
        sym = m.modulate(bits)
        noisy = sym + 0.1 * (
            rng.standard_normal(len(sym)) + 1j * rng.standard_normal(len(sym))
        )
        llr = m.demodulate_soft(noisy, noise_var=0.02)
        hard_from_soft = (llr < 0).astype(np.uint8)
        np.testing.assert_array_equal(hard_from_soft, m.demodulate_hard(noisy))

    def test_llr_magnitude_scales_with_snr(self):
        m = PskModem(2)
        sym = m.modulate(np.array([0], dtype=np.uint8))
        llr_hi = m.demodulate_soft(sym, noise_var=0.01)
        llr_lo = m.demodulate_soft(sym, noise_var=1.0)
        assert llr_hi[0] > llr_lo[0] > 0

    def test_invalid_noise_var(self):
        m = PskModem(2)
        with pytest.raises(ValueError):
            m.demodulate_soft(np.array([1 + 0j]), noise_var=0.0)


class TestLinkBudget:
    def test_esn0_accounts_for_bits_and_rate(self):
        assert np.isclose(esn0_from_ebn0(4.0, 2, 0.5), 4.0)  # 2 bits * rate 1/2
        assert np.isclose(esn0_from_ebn0(4.0, 2, 1.0), 4.0 + 10 * np.log10(2))

    def test_sigma_produces_requested_ber_bpsk(self):
        """Monte-Carlo BER through ebn0_to_sigma must match theory."""
        rng = np.random.default_rng(7)
        m = PskModem(2)
        ebn0 = 6.0
        n = 200_000
        bits = rng.integers(0, 2, n).astype(np.uint8)
        sym = m.modulate(bits)
        sigma = ebn0_to_sigma(ebn0, 1)
        noisy = sym + sigma * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        )
        measured = ber(bits, m.demodulate_hard(noisy))
        theory = theoretical_ber_bpsk(ebn0)
        assert 0.5 * theory < measured < 2.0 * theory

    def test_qpsk_matches_bpsk_per_bit(self):
        rng = np.random.default_rng(8)
        m = PskModem(4)
        ebn0 = 5.0
        n = 100_000
        bits = rng.integers(0, 2, 2 * n).astype(np.uint8)
        sym = m.modulate(bits)
        sigma = ebn0_to_sigma(ebn0, 2)
        noisy = sym + sigma * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        )
        measured = ber(bits, m.demodulate_hard(noisy))
        theory = theoretical_ber_bpsk(ebn0)
        assert 0.5 * theory < measured < 2.0 * theory

    def test_count_bit_errors_validates_shape(self):
        with pytest.raises(ValueError):
            count_bit_errors(np.zeros(3), np.zeros(4))

    def test_ber_empty_is_zero(self):
        assert ber(np.array([]), np.array([])) == 0.0


class TestQuantizer:
    def test_quantize_preserves_small_signals(self):
        x = np.linspace(-0.9, 0.9, 100)
        y = quantize(x, bits=12)
        assert np.max(np.abs(x - y)) < 2.0 / (1 << 12)

    def test_saturation(self):
        y = quantize(np.array([10.0, -10.0]), bits=4, full_scale=1.0)
        assert y[0] < 1.0 and y[1] >= -1.0

    def test_complex_rails_independent(self):
        z = np.array([0.3 + 0.7j])
        y = quantize(z, bits=8)
        assert abs(y[0].real - 0.3) < 0.01 and abs(y[0].imag - 0.7) < 0.01

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(4), bits=0)

    @given(st.integers(min_value=2, max_value=14))
    @settings(max_examples=20, deadline=None)
    def test_error_bounded_by_half_lsb_property(self, bits):
        rng = np.random.default_rng(bits)
        x = rng.uniform(-0.99, 0.99, 200)
        y = quantize(x, bits=bits)
        lsb = 2.0 / (1 << bits)
        assert np.max(np.abs(x - y)) <= lsb  # within one LSB incl. edges

    def test_adc_sqnr_formula(self):
        assert np.isclose(Adc(bits=10).sqnr_db, 6.02 * 10 + 1.76)

    def test_adc_measured_sqnr_close_to_theory(self):
        rng = np.random.default_rng(3)
        adc = Adc(bits=8)
        t = np.arange(100_000)
        x = 0.999 * np.sin(2 * np.pi * 0.01234 * t)
        y = adc.convert(x)
        noise = y - x
        sqnr = 10 * np.log10(np.mean(x**2) / np.mean(noise**2))
        assert abs(sqnr - adc.sqnr_db) < 1.5

    def test_dac_roundtrip(self):
        dac = Dac(bits=12)
        x = np.linspace(-0.5, 0.5, 64)
        assert np.max(np.abs(dac.convert(x) - x)) < 1e-3
