"""Tests for timing recovery ([5],[6]) and carrier recovery."""

import numpy as np
import pytest
from scipy.signal import fftconvolve

from repro.dsp.carrier import (
    DecisionDirectedLoop,
    data_aided_phase,
    frequency_estimate,
    vv_phase_estimate,
)
from repro.dsp.filters import srrc, upsample
from repro.dsp.modem import PskModem
from repro.dsp.timing import (
    HISTORY_MAXLEN,
    GardnerLoop,
    cubic_interpolate,
    fold_timing_offset,
    loop_gains,
    oerder_meyr_estimate,
    oerder_meyr_recover,
)


def _shaped_qpsk(nsym, sps, delay_samples=0.0, seed=0, beta=0.35):
    """QPSK burst at `sps` samples/symbol with a fractional timing offset."""
    rng = np.random.default_rng(seed)
    m = PskModem(4)
    bits = rng.integers(0, 2, nsym * 2).astype(np.uint8)
    sym = m.modulate(bits)
    pulse = srrc(beta, sps, 10)
    x = fftconvolve(upsample(sym, sps), pulse, mode="full")
    if delay_samples:
        from repro.dsp.channel import apply_delay

        x = apply_delay(x, delay_samples)
    # matched filter
    y = fftconvolve(x, pulse[::-1], mode="full")
    return y, sym, bits


class TestCubicInterp:
    def test_exact_at_integer_mu(self):
        x = np.sin(np.arange(32) * 0.3)
        base = np.arange(4, 20)
        y = cubic_interpolate(x, base, np.zeros(len(base)))
        np.testing.assert_allclose(y, x[base], atol=1e-14)

    def test_reconstructs_smooth_signal(self):
        t = np.arange(64, dtype=float)
        x = np.sin(2 * np.pi * 0.05 * t)
        base = np.arange(5, 55)
        mu = np.full(len(base), 0.37)
        y = cubic_interpolate(x, base, mu)
        expected = np.sin(2 * np.pi * 0.05 * (base + 0.37))
        np.testing.assert_allclose(y, expected, atol=5e-4)

    def test_short_input_rejected(self):
        with pytest.raises(ValueError):
            cubic_interpolate(np.zeros(3), np.array([1]), np.array([0.5]))


class TestFoldTimingOffset:
    """Regression for the ``np.mod(-1e-18, 4) == 4.0`` boundary bug."""

    def test_tiny_negative_folds_to_zero(self):
        # np.mod rounds -1e-18 % 4 up to exactly 4.0, which violated the
        # 0 <= tau < sps contract and shifted the first strobe of
        # oerder_meyr_recover by a full symbol.
        assert float(np.mod(-1e-18, 4)) == 4.0  # the numpy behaviour
        assert fold_timing_offset(-1e-18, 4) == 0.0

    @pytest.mark.parametrize(
        "tau,sps,expected",
        [
            (0.0, 4, 0.0),
            (4.0, 4, 0.0),
            (-4.0, 4, 0.0),
            (0.5, 4, 0.5),
            (-0.25, 4, 3.75),
            (7.5, 4, 3.5),
            (1e-18, 4, 1e-18),
            (-1e-18, 3, 0.0),
        ],
    )
    def test_contract(self, tau, sps, expected):
        got = fold_timing_offset(tau, sps)
        assert 0.0 <= got < sps
        assert got == pytest.approx(expected, abs=1e-12)

    def test_estimate_respects_contract_near_zero_offset(self):
        """Bursts with ~zero true offset must never return tau == sps."""
        sps = 4
        for seed in range(8):
            y, _, _ = _shaped_qpsk(128, sps, delay_samples=0.0, seed=seed)
            tau = oerder_meyr_estimate(y, sps)
            assert 0.0 <= tau < sps


class TestHistoryCaps:
    """Loop histories are bounded ring buffers, not unbounded lists."""

    def test_gardner_history_bounded(self):
        sps = 4
        y, _, _ = _shaped_qpsk(600, sps, delay_samples=1.0, seed=6)
        loop = GardnerLoop(sps=sps, history_maxlen=128)
        loop.process(y)
        assert len(loop.error_history) == 128
        assert len(loop.tau_history) == 128
        # diagnostics still work on the capped buffer
        assert loop.error_rms(64) >= 0.0
        assert all(0.0 <= t < sps for t in loop.tau_history)

    def test_gardner_default_maxlen(self):
        loop = GardnerLoop()
        assert loop.error_history.maxlen == HISTORY_MAXLEN
        assert loop.tau_history.maxlen == HISTORY_MAXLEN

    def test_dd_loop_history_bounded(self):
        rng = np.random.default_rng(9)
        m = PskModem(4)
        sym = m.modulate(rng.integers(0, 2, 2 * 500).astype(np.uint8))
        loop = DecisionDirectedLoop(order=4, history_maxlen=64)
        loop.process(sym)
        assert len(loop.phase_history) == 64
        assert DecisionDirectedLoop().phase_history.maxlen == HISTORY_MAXLEN

    def test_dll_history_bounded(self):
        from repro.dsp.cdma import Dll

        code = np.where(np.arange(16) % 2 == 0, 1.0, -1.0)
        dll = Dll(code, sps=4)
        assert dll.tau_history.maxlen == HISTORY_MAXLEN
        # appending past the cap discards the oldest entry
        for i in range(HISTORY_MAXLEN + 10):
            dll.tau_history.append(float(i))
        assert len(dll.tau_history) == HISTORY_MAXLEN
        assert dll.tau_history[0] == 10.0


class TestOerderMeyr:
    @pytest.mark.parametrize("true_tau", [0.0, 0.8, 1.5, 2.3, 3.6])
    def test_estimates_fractional_offset(self, true_tau):
        sps = 4
        y, _, _ = _shaped_qpsk(256, sps, delay_samples=true_tau, seed=1)
        est = oerder_meyr_estimate(y, sps)
        # estimate is modulo sps; pulse group delay is an integer multiple
        # of sps (2*10*sps/2 = 10*sps), so residual should equal true_tau
        err = (est - true_tau + sps / 2) % sps - sps / 2
        assert abs(err) < 0.15

    def test_requires_sps_3(self):
        with pytest.raises(ValueError):
            oerder_meyr_estimate(np.zeros(100), 2)

    def test_short_burst_rejected(self):
        with pytest.raises(ValueError):
            oerder_meyr_estimate(np.zeros(8), 4)

    def test_recover_returns_symbol_stream(self):
        sps = 4
        y, sym, _ = _shaped_qpsk(200, sps, delay_samples=1.7, seed=2)
        out, tau = oerder_meyr_recover(y, sps)
        assert len(out) >= 190
        assert 0.0 <= tau < sps

    def test_recovered_symbols_match_constellation(self):
        """After timing recovery the EVM against nearest QPSK must be small."""
        sps = 4
        y, sym, _ = _shaped_qpsk(300, sps, delay_samples=2.4, seed=3)
        out, _ = oerder_meyr_recover(y, sps)
        m = PskModem(4)
        core = out[20:-20]
        d = np.abs(core[:, None] - m.points[None, :]).min(axis=1)
        evm = np.sqrt(np.mean(d**2))
        assert evm < 0.12


class TestGardner:
    def test_loop_gains_positive(self):
        kp, ki = loop_gains(0.01)
        assert kp > 0 and ki > 0 and ki < kp

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            loop_gains(0.0)

    def test_requires_2_sps(self):
        with pytest.raises(ValueError):
            GardnerLoop(sps=1)

    def test_converges_and_demodulates(self):
        sps = 4
        y, sym, bits = _shaped_qpsk(2000, sps, delay_samples=1.3, seed=4)
        loop = GardnerLoop(sps=sps, bn_ts=0.01)
        out = loop.process(y)
        m = PskModem(4)
        # after convergence (skip 300 symbols) decisions must be clean
        core = out[300:1800]
        d = np.abs(core[:, None] - m.points[None, :]).min(axis=1)
        assert np.sqrt(np.mean(d**2)) < 0.15

    def test_error_history_settles(self):
        sps = 4
        y, _, _ = _shaped_qpsk(1500, sps, delay_samples=2.0, seed=5)
        loop = GardnerLoop(sps=sps, bn_ts=0.02)
        loop.process(y)
        errs = np.asarray(loop.error_history)
        early = np.mean(np.abs(errs[:100]))
        late = np.mean(np.abs(errs[-300:]))
        assert late < max(early, 0.05) * 1.5


class TestCarrierRecovery:
    def test_vv_estimates_static_phase_qpsk(self):
        rng = np.random.default_rng(6)
        m = PskModem(4)
        bits = rng.integers(0, 2, 2000).astype(np.uint8)
        sym = m.modulate(bits) * np.exp(1j * 0.1)
        est = vv_phase_estimate(sym, order=4)
        assert abs(est - 0.1) < 0.02

    def test_vv_empty_rejected(self):
        with pytest.raises(ValueError):
            vv_phase_estimate(np.array([]))

    def test_data_aided_phase_exact(self):
        rng = np.random.default_rng(7)
        m = PskModem(4)
        ref = m.modulate(rng.integers(0, 2, 64).astype(np.uint8))
        rx = ref * np.exp(1j * 1.234)
        assert abs(data_aided_phase(rx, ref) - 1.234) < 1e-10

    def test_data_aided_shape_mismatch(self):
        with pytest.raises(ValueError):
            data_aided_phase(np.ones(3), np.ones(4))

    def test_frequency_estimate_accuracy(self):
        rng = np.random.default_rng(8)
        m = PskModem(4)
        sym = m.modulate(rng.integers(0, 2, 1024).astype(np.uint8))
        f0 = 0.003
        rx = sym * np.exp(2j * np.pi * f0 * np.arange(len(sym)))
        est = frequency_estimate(rx, order=4)
        assert abs(est - f0) < 2e-4

    def test_frequency_estimate_needs_symbols(self):
        with pytest.raises(ValueError):
            frequency_estimate(np.ones(4))

    def test_dd_loop_tracks_phase_ramp(self):
        rng = np.random.default_rng(9)
        m = PskModem(4)
        sym = m.modulate(rng.integers(0, 2, 4000).astype(np.uint8))
        f0 = 5e-4
        rx = sym * np.exp(1j * (2 * np.pi * f0 * np.arange(len(sym)) + 0.3))
        loop = DecisionDirectedLoop(order=4, bn_ts=0.02)
        out = loop.process(rx)
        core = out[1000:]
        d = np.abs(core[:, None] - m.points[None, :]).min(axis=1)
        assert np.sqrt(np.mean(d**2)) < 0.1

    def test_dd_loop_invalid_order(self):
        with pytest.raises(ValueError):
            DecisionDirectedLoop(order=3)
