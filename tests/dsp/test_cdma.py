"""Tests for the CDMA modem personality: codes, acquisition, DLL, chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.cdma import (
    _GOLD_PAIR_TAPS,
    _PRIMITIVE_TAPS,
    CdmaConfig,
    CdmaModem,
    Dll,
    acquire,
    despread,
    gold_code,
    m_sequence,
    mean_acquisition_time,
    ovsf_code,
    spread,
)
from repro.dsp.channel import SatelliteChannel
from repro.sim import RngRegistry


class TestSequences:
    @pytest.mark.parametrize("deg", [3, 5, 7, 9])
    def test_m_sequence_length_and_balance(self, deg):
        s = m_sequence(deg)
        assert len(s) == 2**deg - 1
        # balance property: one more -1 than +1
        assert np.sum(s == 1) == 2 ** (deg - 1) - 1

    def test_m_sequence_two_valued_autocorrelation(self):
        s = m_sequence(7).astype(float)
        n = len(s)
        for shift in (1, 5, 50):
            r = np.dot(s, np.roll(s, shift))
            assert r == -1  # classic m-sequence property

    def test_unknown_degree_rejected(self):
        with pytest.raises(ValueError):
            m_sequence(2)

    def test_gold_code_cross_correlation_bounded(self):
        deg = 7
        n = 2**deg - 1
        a = gold_code(deg, 0).astype(float)
        b = gold_code(deg, 3).astype(float)
        bound = 2 ** ((deg + 1) // 2) + 1  # Gold bound for odd degree
        cc = np.array([np.dot(a, np.roll(b, k)) for k in range(n)])
        assert np.max(np.abs(cc)) <= bound

    def test_gold_unknown_degree(self):
        with pytest.raises(ValueError):
            gold_code(4)

    @pytest.mark.parametrize("sf", [4, 8, 16, 64])
    def test_ovsf_orthogonality(self, sf):
        codes = np.vstack([ovsf_code(sf, i) for i in range(sf)]).astype(float)
        gram = codes @ codes.T
        np.testing.assert_allclose(gram, sf * np.eye(sf))

    def test_ovsf_validation(self):
        with pytest.raises(ValueError):
            ovsf_code(6, 0)
        with pytest.raises(ValueError):
            ovsf_code(8, 8)


class TestSequenceVectorization:
    """The chunked-recurrence LFSR must equal a chip-at-a-time register."""

    @staticmethod
    def _scalar_lfsr(degree, taps):
        state = np.ones(degree, dtype=np.uint8)
        length = 2**degree - 1
        out = np.empty(length, dtype=np.uint8)
        for i in range(length):
            out[i] = state[-1]
            fb = 0
            for t in taps:
                fb ^= state[t - 1]
            state[1:] = state[:-1]
            state[0] = fb
        return (1 - 2 * out.astype(np.int64)).astype(np.int8)

    @pytest.mark.parametrize("deg", sorted(_PRIMITIVE_TAPS))
    def test_matches_scalar_register_primitive(self, deg):
        np.testing.assert_array_equal(
            m_sequence(deg), self._scalar_lfsr(deg, _PRIMITIVE_TAPS[deg])
        )

    @pytest.mark.parametrize("deg", sorted(_GOLD_PAIR_TAPS))
    def test_matches_scalar_register_gold_pair(self, deg):
        np.testing.assert_array_equal(
            m_sequence(deg, _GOLD_PAIR_TAPS[deg]),
            self._scalar_lfsr(deg, _GOLD_PAIR_TAPS[deg]),
        )

    def test_bad_taps_rejected(self):
        with pytest.raises(ValueError):
            m_sequence(5, (5, 7))
        with pytest.raises(ValueError):
            m_sequence(5, (0, 2))


class TestDesignCacheRegistration:
    """Code tables live in the repro.caching registry as frozen arrays."""

    TABLES = (
        "cdma.m_sequence",
        "cdma.gold_code",
        "cdma.ovsf_code",
        "cdma.spreading_code",
        "cdma.acq_code_fft",
    )

    def test_all_tables_registered(self):
        from repro.caching import design_cache_stats

        # derive one of each so every cache has been touched
        m_sequence(5)
        gold_code(5)
        ovsf_code(8, 1)
        code = CdmaConfig(sf=8).spreading_code()
        acquire(np.tile(code.astype(complex), 2), code)
        stats = design_cache_stats()
        for name in self.TABLES:
            assert name in stats, name
            assert stats[name]["currsize"] >= 1, name

    def test_tables_are_frozen(self):
        for arr in (
            m_sequence(7),
            gold_code(7, 2),
            ovsf_code(16, 3),
            CdmaConfig(sf=16).spreading_code(),
        ):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_repeat_calls_hit_the_cache(self):
        from repro.caching import design_cache_stats

        a = gold_code(9, 17)
        before = design_cache_stats()["cdma.gold_code"]["hits"]
        b = gold_code(9, 17)
        after = design_cache_stats()["cdma.gold_code"]["hits"]
        assert a is b  # the same frozen object, not a copy
        assert after == before + 1

    def test_acq_fft_keyed_by_content(self):
        """Two equal-content code arrays share one conj-FFT table."""
        from repro.dsp.cdma import _acq_code_fft

        code = CdmaConfig(sf=16).spreading_code()
        assert _acq_code_fft(code) is _acq_code_fft(code.copy())


class TestSpreadDespread:
    def test_roundtrip_identity(self):
        rng = np.random.default_rng(0)
        code = gold_code(5)[:16].astype(float)
        sym = rng.standard_normal(20) + 1j * rng.standard_normal(20)
        np.testing.assert_allclose(despread(spread(sym, code), code), sym, atol=1e-12)

    def test_wrong_chip_count(self):
        with pytest.raises(ValueError):
            despread(np.zeros(10), np.ones(16))

    def test_orthogonal_user_rejected(self):
        """A second user on an orthogonal OVSF branch despreads to ~zero."""
        rng = np.random.default_rng(1)
        c1 = ovsf_code(16, 1).astype(float)
        c2 = ovsf_code(16, 5).astype(float)
        sym = rng.standard_normal(50) + 1j * rng.standard_normal(50)
        interference = spread(sym, c2)
        out = despread(interference, c1)
        np.testing.assert_allclose(out, 0.0, atol=1e-12)

    @given(st.integers(min_value=0, max_value=15))
    @settings(max_examples=16, deadline=None)
    def test_roundtrip_any_ovsf_branch(self, idx):
        code = ovsf_code(16, idx).astype(float)
        sym = np.exp(1j * np.arange(8))
        np.testing.assert_allclose(despread(spread(sym, code), code), sym, atol=1e-12)


class TestAcquisition:
    def _chips(self, code, nsym, phase, sigma, seed):
        rng = np.random.default_rng(seed)
        sym = np.exp(1j * rng.uniform(0, 2 * np.pi, nsym))  # random data
        chips = spread(sym, code.astype(float))
        chips = np.roll(chips, phase)
        noise = sigma * (
            rng.standard_normal(len(chips)) + 1j * rng.standard_normal(len(chips))
        )
        return chips + noise

    def test_finds_correct_phase(self):
        code = CdmaConfig(sf=64).spreading_code()
        for phase in (0, 7, 33, 63):
            rx = self._chips(code, 16, phase, 0.3, seed=phase)
            res = acquire(rx, code, coherent_symbols=8)
            assert res.phase == phase
            assert res.detected

    def test_no_signal_not_detected(self):
        rng = np.random.default_rng(2)
        code = CdmaConfig(sf=64).spreading_code()
        noise = rng.standard_normal(64 * 8) + 1j * rng.standard_normal(64 * 8)
        res = acquire(noise, code, coherent_symbols=8)
        assert not res.detected

    def test_short_input_rejected(self):
        code = CdmaConfig(sf=64).spreading_code()
        with pytest.raises(ValueError):
            acquire(np.zeros(32), code)

    def test_statistics_vector_shape(self):
        code = CdmaConfig(sf=32).spreading_code()
        rx = self._chips(code, 4, 5, 0.1, seed=9)
        res = acquire(rx, code, coherent_symbols=4)
        assert res.statistics.shape == (32,)


class TestMeanAcqTime:
    def test_perfect_detection_floor(self):
        # pd=1, pfa=0: T = (2 + (cells-1)) * dwell / 2
        t = mean_acquisition_time(1.0, 0.0, cells=100, dwell=1e-3, penalty=1e-2)
        assert np.isclose(t, (2 + 99) * 1e-3 / 2)

    def test_low_pd_increases_time(self):
        t_hi = mean_acquisition_time(0.99, 1e-3, 256, 1e-3, 1e-2)
        t_lo = mean_acquisition_time(0.5, 1e-3, 256, 1e-3, 1e-2)
        assert t_lo > t_hi

    def test_false_alarms_penalize(self):
        t0 = mean_acquisition_time(0.9, 0.0, 256, 1e-3, 1.0)
        t1 = mean_acquisition_time(0.9, 0.1, 256, 1e-3, 1.0)
        assert t1 > t0

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_acquisition_time(0.0, 0.0, 10, 1e-3, 1e-2)
        with pytest.raises(ValueError):
            mean_acquisition_time(0.9, 1.0, 10, 1e-3, 1e-2)


class TestDll:
    def test_tracks_static_offset(self):
        """DLL should converge its strobe onto a half-chip initial error."""
        from scipy.signal import fftconvolve

        from repro.dsp.filters import srrc, upsample

        cfg = CdmaConfig(sf=32)
        code = cfg.spreading_code()
        rng = np.random.default_rng(3)
        nsym = 200
        sym = np.exp(1j * (np.pi / 4 + np.pi / 2 * rng.integers(0, 4, nsym)))
        chips = spread(sym, code)
        sps = cfg.chip_sps
        pulse = srrc(cfg.beta, sps, cfg.span)
        x = fftconvolve(upsample(chips, sps), pulse, mode="full")
        mf = fftconvolve(x, pulse[::-1], mode="full")
        gd = len(pulse) - 1
        dll = Dll(code, sps=sps, gain=0.15)
        # start half a chip early
        out = dll.process(mf, float(gd) - sps / 2, nsym)
        tau = np.asarray(dll.tau_history)
        # loop must slew ~ +sps/2 samples to compensate
        assert abs(tau[-1] - sps / 2) < 0.35 * sps
        # despread symbols at the end must be near-unit magnitude
        assert np.mean(np.abs(out[-50:])) > 0.9

    def test_validation(self):
        code = np.ones(8)
        with pytest.raises(ValueError):
            Dll(code, sps=1)
        with pytest.raises(ValueError):
            Dll(code, sps=4, delta=3.0)

    def test_truncated_burst_raises_instead_of_clipping(self):
        """Regression: strobes off the buffer end must raise, not clip.

        ``_despread_at`` used to clip the interpolation base into
        ``[0, len(x) - 2]``, so a strobe grid running past the end of a
        truncated burst silently correlated against dozens of copies of
        the edge sample -- a corrupted symbol presented as a valid one.
        The kernel now validates the required span up front.
        """
        code = CdmaConfig(sf=16).spreading_code()
        dll = Dll(code, sps=4, gain=0.0)
        # 16 chips x 4 sps = 64 samples needed (+1 interpolator tap)
        with pytest.raises(ValueError, match="outside the"):
            dll._despread_at(np.ones(40, dtype=complex), 0.0)
        with pytest.raises(ValueError, match="outside the"):
            dll.process(np.ones(100, dtype=complex), 0.0, 2)
        # negative start positions are just as invalid
        with pytest.raises(ValueError, match="outside the"):
            dll._despread_at(np.ones(100, dtype=complex), -1.0)
        # exactly enough samples is fine
        out = dll._despread_at(np.ones(66, dtype=complex), 0.0)
        assert np.isfinite(out.real)

    def test_receive_pads_legitimate_tail_strobes(self):
        """A full burst whose last strobes land in the filter tail must
        still demodulate: the receive path zero-pads the matched filter
        output instead of tripping the span check (only a genuinely
        truncated burst raises)."""
        reg = RngRegistry(seed=21)
        cm = CdmaModem(CdmaConfig(sf=32))
        bits = reg.stream("b").integers(0, 2, 256).astype(np.uint8)
        tx = cm.transmit(bits)
        # a large delay pushes the settled strobe grid into the tail
        ch = SatelliteChannel(
            snr_sigma=0.05,
            delay=29 * cm.config.chip_sps,
            rng=reg.stream("n"),
        )
        out = cm.receive(ch.apply(tx), 256)
        assert np.mean(out["bits"] != bits) < 0.01

    def test_receive_rejects_truncated_burst(self):
        cm = CdmaModem(CdmaConfig(sf=16))
        bits = np.zeros(64, dtype=np.uint8)
        tx = cm.transmit(bits)
        with pytest.raises(ValueError):
            cm.receive(tx[: len(tx) // 3], 64)


class TestCdmaModemChain:
    def test_loopback_no_noise(self):
        cm = CdmaModem()
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, 128).astype(np.uint8)
        out = cm.receive(cm.transmit(bits), 128)
        np.testing.assert_array_equal(out["bits"], bits)

    def test_loopback_with_channel(self):
        reg = RngRegistry(seed=11)
        cm = CdmaModem(CdmaConfig(sf=32))
        bits = reg.stream("b").integers(0, 2, 256).astype(np.uint8)
        tx = cm.transmit(bits)
        ch = SatelliteChannel(
            snr_sigma=0.15,
            phase=1.1,
            delay=13 * cm.config.chip_sps + 1.0,
            rng=reg.stream("n"),
        )
        out = cm.receive(ch.apply(tx), 256)
        assert np.mean(out["bits"] != bits) < 0.01
        assert out["acquisition"].phase in (12, 13, 14)

    def test_num_tx_samples_matches(self):
        cm = CdmaModem()
        bits = np.zeros(64, dtype=np.uint8)
        assert len(cm.transmit(bits)) == cm.num_tx_samples(64)

    def test_multi_user_separation(self):
        """Two users on orthogonal OVSF branches, same scrambler: both decode."""
        reg = RngRegistry(seed=12)
        cfg1 = CdmaConfig(sf=32, code_index=3)
        cfg2 = CdmaConfig(sf=32, code_index=9)
        m1, m2 = CdmaModem(cfg1), CdmaModem(cfg2)
        b1 = reg.stream("u1").integers(0, 2, 128).astype(np.uint8)
        b2 = reg.stream("u2").integers(0, 2, 128).astype(np.uint8)
        composite = m1.transmit(b1) + m2.transmit(b2)
        o1 = m1.receive(composite, 128)
        o2 = m2.receive(composite, 128)
        assert np.mean(o1["bits"] != b1) < 0.05
        assert np.mean(o2["bits"] != b2) < 0.05
