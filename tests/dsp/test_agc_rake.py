"""Tests for the AGC and the CDMA rake receiver."""

import numpy as np
import pytest

from repro.dsp.agc import Agc, burst_gain
from repro.dsp.cdma import CdmaConfig, CdmaModem, RakeReceiver, acquire, spread
from repro.dsp.channel import Multipath, SatelliteChannel
from repro.sim import RngRegistry


class TestBurstGain:
    def test_exact_for_constant_amplitude(self):
        assert np.isclose(burst_gain(0.5 * np.ones(64)), 2.0)

    def test_target_parameter(self):
        assert np.isclose(burst_gain(np.ones(10), target_rms=3.0), 3.0)

    def test_zero_signal_unity(self):
        assert burst_gain(np.zeros(10)) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            burst_gain(np.array([]))


class TestAgc:
    def test_converges_to_target_from_low_input(self):
        agc = Agc(target_rms=1.0, mu=0.1)
        x = 0.1 * np.exp(1j * np.linspace(0, 100, 5000))
        y = agc.process(x)
        rms_tail = np.sqrt(np.mean(np.abs(y[-500:]) ** 2))
        assert abs(rms_tail - 1.0) < 0.05

    def test_converges_from_high_input(self):
        agc = Agc(target_rms=1.0, mu=0.1)
        x = 8.0 * np.exp(1j * np.linspace(0, 100, 5000))
        y = agc.process(x)
        rms_tail = np.sqrt(np.mean(np.abs(y[-500:]) ** 2))
        assert abs(rms_tail - 1.0) < 0.05

    def test_state_persists_across_blocks(self):
        agc = Agc(mu=0.1)
        x = 0.2 * np.ones(4000, dtype=complex)
        agc.process(x[:2000])
        g_mid = agc.gain
        agc.process(x[2000:])
        assert abs(agc.gain - 5.0) < 0.5
        assert agc.gain >= g_mid * 0.5  # no reset between blocks

    def test_gain_clamped(self):
        agc = Agc(mu=0.5, max_gain=10.0)
        agc.process(np.full(5000, 1e-6, dtype=complex))
        assert agc.gain <= 10.0

    def test_tracks_level_step(self):
        agc = Agc(mu=0.1)
        x = np.concatenate([
            0.5 * np.ones(3000, dtype=complex),
            2.0 * np.ones(3000, dtype=complex),
        ])
        y = agc.process(x)
        rms_tail = np.sqrt(np.mean(np.abs(y[-500:]) ** 2))
        assert abs(rms_tail - 1.0) < 0.1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Agc(target_rms=0.0)
        with pytest.raises(ValueError):
            Agc(mu=1.5)
        with pytest.raises(ValueError):
            Agc(min_gain=1.0, max_gain=0.5)

    def test_gain_history_bounded_on_long_runs(self):
        """Regression: the gain history must not grow without bound.

        The continuous front end runs the AGC forever; the history used
        to be a plain list appending one float per 32-sample chunk, a
        slow per-carrier memory leak.  It is now a ring buffer capped at
        ``HISTORY_MAXLEN`` entries (same fix as the timing loops).
        """
        from repro.dsp.timing import HISTORY_MAXLEN

        agc = Agc(mu=0.1)
        x = 0.5 * np.ones(4096, dtype=complex)
        chunks_needed = HISTORY_MAXLEN * 32  # one entry per 32 samples
        processed = 0
        while processed <= chunks_needed:
            agc.process(x)
            processed += len(x)
        assert len(agc.gain_history) == HISTORY_MAXLEN
        assert agc.gain_history.maxlen == HISTORY_MAXLEN
        # the retained tail is the newest gains (converged, not startup)
        assert abs(agc.gain_history[-1] - 2.0) < 0.1


def _multipath_burst(seed, echo_gain=0.6, echo_chips=3, sigma=0.08, sf=64, nbits=256):
    reg = RngRegistry(seed)
    cm = CdmaModem(CdmaConfig(sf=sf))
    bits = reg.stream("b").integers(0, 2, nbits).astype(np.uint8)
    tx = cm.transmit(bits)
    mp = Multipath(
        delays=(0, echo_chips * cm.config.chip_sps),
        gains=(1.0, echo_gain * np.exp(1j * 1.2)),
    )
    ch = SatelliteChannel(snr_sigma=sigma, phase=0.5, multipath=mp, rng=reg.stream("n"))
    return cm, bits, ch.apply(tx)


class TestRake:
    def test_finds_both_fingers(self):
        cm, bits, rx = _multipath_burst(seed=1)
        out = cm.receive_rake(rx, 256)
        assert 0 in out["fingers"] and 3 in out["fingers"]

    def test_finger_gains_match_channel(self):
        cm, bits, rx = _multipath_burst(seed=2, echo_gain=0.5)
        out = cm.receive_rake(rx, 256)
        mags = sorted(np.abs(out["finger_gains"]), reverse=True)
        assert abs(mags[0] - 1.0) < 0.15
        assert abs(mags[1] - 0.5) < 0.15

    def test_rake_decodes_under_multipath(self):
        cm, bits, rx = _multipath_burst(seed=3, echo_gain=0.7, sigma=0.12)
        out = cm.receive_rake(rx, 256)
        assert np.mean(out["bits"] != bits) < 0.01

    def test_rake_at_least_as_good_as_single_finger(self):
        """Across several noisy multipath bursts, rake >= plain receiver."""
        rake_err = plain_err = 0
        for seed in range(4, 10):
            cm, bits, rx = _multipath_burst(seed=seed, echo_gain=0.8, sigma=0.25)
            rake_err += int(np.count_nonzero(cm.receive_rake(rx, 256)["bits"] != bits))
            plain_err += int(np.count_nonzero(cm.receive(rx, 256)["bits"] != bits))
        assert rake_err <= plain_err

    def test_single_path_degenerates_to_one_finger(self):
        reg = RngRegistry(11)
        cm = CdmaModem(CdmaConfig(sf=64))
        bits = reg.stream("b").integers(0, 2, 128).astype(np.uint8)
        rx = cm.transmit(bits)
        out = cm.receive_rake(rx, 128)
        assert out["fingers"] == [0]
        np.testing.assert_array_equal(out["bits"], bits)

    def test_validation(self):
        code = np.ones(8)
        with pytest.raises(ValueError):
            RakeReceiver(code, max_fingers=0)
        with pytest.raises(ValueError):
            RakeReceiver(code, finger_threshold=1.5)
        rake = RakeReceiver(code)
        with pytest.raises(RuntimeError):
            rake.despread_fingers(np.zeros(64, dtype=complex), 0.0, 2)

    def test_combine_requires_pilot_coverage(self):
        rake = RakeReceiver(np.ones(8))
        with pytest.raises(ValueError):
            rake.combine(np.ones((2, 4), dtype=complex), np.ones(8, dtype=complex))

    def test_finger_adjacency_wraps_around_code_period(self):
        """Regression: code phases are cyclic, so a correlation sidelobe
        at phase 0 sits one chip from a path at phase ``sf - 1`` and
        must be rejected -- the old linear ``abs(idx - f)`` distance saw
        them ``sf - 1`` apart and double-counted the arrival in the MRC
        combiner."""
        from repro.dsp.cdma import AcquisitionResult

        sf = 8
        stat = np.zeros(sf)
        stat[7] = 1.0  # true path straddling the wrap
        stat[0] = 0.6  # its sidelobe, one chip away *cyclically*
        stat[4] = 0.5  # a genuine second path, far from both
        stat[6] = 0.4  # linear-adjacent sidelobe (already handled)
        acq = AcquisitionResult(
            phase=7, metric=1.0, mean_level=0.1, detected=True, statistics=stat
        )
        rake = RakeReceiver(np.ones(sf), finger_threshold=0.2)
        assert rake.find_fingers(acq) == [7, 4]

    def test_distant_phases_survive_cyclic_distance(self):
        """The modular distance never rejects genuinely separate paths."""
        from repro.dsp.cdma import AcquisitionResult

        sf = 64
        stat = np.zeros(sf)
        stat[0] = 1.0
        stat[3] = 0.7
        stat[63] = 0.6  # cyclically adjacent to phase 0 -> rejected
        acq = AcquisitionResult(
            phase=0, metric=1.0, mean_level=0.05, detected=True, statistics=stat
        )
        rake = RakeReceiver(np.ones(sf), finger_threshold=0.2)
        assert rake.find_fingers(acq) == [0, 3]
