"""Tests for MF-TDMA framing and the TDMA burst modem."""

import numpy as np
import pytest

from repro.dsp.channel import SatelliteChannel
from repro.dsp.modem import ebn0_to_sigma
from repro.dsp.tdma import BurstFormat, FramePlan, TdmaModem, default_uw
from repro.dsp.modem import PskModem
from repro.sim import RngRegistry


class TestBurstFormat:
    def test_total(self):
        assert BurstFormat(32, 20, 256).total == 308

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstFormat(preamble=0)


class TestFramePlan:
    def test_paper_default_six_carriers(self):
        assert FramePlan().num_carriers == 6

    def test_assign_and_occupancy(self):
        fp = FramePlan(num_carriers=2, slots_per_frame=3)
        fp.assign("t1", 0, 0)
        fp.assign("t2", 1, 2)
        assert fp.occupant(0, 0) == "t1"
        assert fp.occupant(1, 2) == "t2"
        assert fp.occupant(0, 1) is None
        assert np.isclose(fp.utilization(), 2 / 6)

    def test_double_booking_rejected(self):
        fp = FramePlan(num_carriers=1, slots_per_frame=1)
        fp.assign("a", 0, 0)
        with pytest.raises(ValueError):
            fp.assign("b", 0, 0)

    def test_out_of_range(self):
        fp = FramePlan(num_carriers=2, slots_per_frame=2)
        with pytest.raises(ValueError):
            fp.assign("a", 2, 0)
        with pytest.raises(ValueError):
            fp.assign("a", 0, 5)

    def test_slot_duration(self):
        fp = FramePlan(slots_per_frame=8, frame_duration=0.024)
        assert np.isclose(fp.slot_duration, 0.003)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            FramePlan(num_carriers=0)


class TestUw:
    def test_uw_autocorrelation_peak(self):
        psk = PskModem(4)
        uw = default_uw(psk, 20)
        acorr = np.abs(np.correlate(uw, uw, mode="full"))
        peak = acorr[len(uw) - 1]
        sidelobes = np.delete(acorr, len(uw) - 1)
        assert peak / sidelobes.max() > 2.0


class TestTdmaModem:
    def test_loopback_clean(self):
        tm = TdmaModem()
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, tm.bits_per_burst).astype(np.uint8)
        out = tm.receive(tm.transmit(bits))
        np.testing.assert_array_equal(out["bits"], bits)
        assert out["uw_metric"] > 0.95

    def test_loopback_with_impairments(self):
        reg = RngRegistry(seed=5)
        tm = TdmaModem()
        bits = reg.stream("b").integers(0, 2, tm.bits_per_burst).astype(np.uint8)
        sigma = ebn0_to_sigma(9.0, 2) / np.sqrt(tm.sps)
        ch = SatelliteChannel(
            snr_sigma=sigma, phase=2.0, delay=5.7, rng=reg.stream("n")
        )
        out = tm.receive(ch.apply(tm.transmit(bits)))
        assert np.mean(out["bits"] != bits) < 5e-3

    def test_partial_bits_padded(self):
        tm = TdmaModem()
        bits = np.array([1, 0, 1, 1], dtype=np.uint8)
        out = tm.receive(tm.transmit(bits), num_bits=4)
        np.testing.assert_array_equal(out["bits"], bits)

    def test_overfull_burst_rejected(self):
        tm = TdmaModem()
        with pytest.raises(ValueError):
            tm.transmit(np.zeros(tm.bits_per_burst + 1, dtype=np.uint8))

    def test_num_tx_samples(self):
        tm = TdmaModem()
        assert len(tm.transmit(np.zeros(8, dtype=np.uint8))) == tm.num_tx_samples()

    def test_auto_picks_gardner_for_long_bursts(self):
        tm = TdmaModem(burst=BurstFormat(payload=600), timing="auto")
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, tm.bits_per_burst).astype(np.uint8)
        out = tm.receive(tm.transmit(bits))
        assert out["timing_mode"] == "gardner"
        # Gardner needs convergence; check BER after loop settles instead of all bits
        assert out["uw_metric"] > 0.8

    def test_auto_picks_om_for_short_bursts(self):
        tm = TdmaModem(timing="auto")
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, tm.bits_per_burst).astype(np.uint8)
        out = tm.receive(tm.transmit(bits))
        assert out["timing_mode"] == "oerder-meyr"

    def test_explicit_gardner_mode(self):
        tm = TdmaModem(timing="gardner", burst=BurstFormat(preamble=128, payload=512))
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, tm.bits_per_burst).astype(np.uint8)
        out = tm.receive(tm.transmit(bits))
        assert out["timing_mode"] == "gardner"
        assert np.mean(out["bits"] != bits) < 0.02

    def test_invalid_timing_mode(self):
        with pytest.raises(ValueError):
            TdmaModem(timing="magic")

    def test_invalid_sps(self):
        with pytest.raises(ValueError):
            TdmaModem(sps=2)

    def test_phase_ambiguity_resolved_by_uw(self):
        """A pi/2 carrier rotation must not corrupt the payload."""
        tm = TdmaModem()
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, tm.bits_per_burst).astype(np.uint8)
        tx = tm.transmit(bits) * np.exp(1j * np.pi / 2)
        out = tm.receive(tx)
        np.testing.assert_array_equal(out["bits"], bits)
