"""Tests for FIR design and filtering primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.filters import (
    FirFilter,
    HalfBandDecimator,
    PolyphaseDecimator,
    design_lowpass,
    fractional_delay_filter,
    halfband,
    rc,
    srrc,
    upsample,
)


class TestDesignLowpass:
    def test_unit_dc_gain(self):
        h = design_lowpass(63, 0.2)
        assert np.isclose(h.sum(), 1.0)

    def test_symmetric_linear_phase(self):
        h = design_lowpass(63, 0.2)
        np.testing.assert_allclose(h, h[::-1], atol=1e-15)

    def test_stopband_attenuation(self):
        h = design_lowpass(101, 0.1)
        w = np.fft.rfftfreq(4096)
        H = np.abs(np.fft.rfft(h, 4096))
        stop = H[w > 0.18]
        assert stop.max() < 10 ** (-40 / 20)  # > 40 dB attenuation

    @pytest.mark.parametrize("cutoff", [0.0, 0.5, 0.7, -0.1])
    def test_invalid_cutoff(self, cutoff):
        with pytest.raises(ValueError):
            design_lowpass(31, cutoff)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            design_lowpass(31, 0.2, window="kaiser-nope")


class TestHalfband:
    def test_zero_pattern(self):
        h = halfband(31)
        mid = 15
        for i in range(31):
            if i != mid and (i - mid) % 2 == 0:
                assert h[i] == 0.0, f"tap {i} should be zero"

    def test_center_tap_half(self):
        h = halfband(31)
        assert np.isclose(h[15], 0.5, atol=0.02)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            halfband(32)

    def test_decimator_removes_out_of_band(self):
        rng = np.random.default_rng(0)
        n = 4096
        t = np.arange(n)
        inband = np.exp(2j * np.pi * 0.05 * t)
        outband = np.exp(2j * np.pi * 0.45 * t)
        dec = HalfBandDecimator(31)
        y_in = dec.process(inband)
        dec2 = HalfBandDecimator(31)
        y_out = dec2.process(outband)
        p_in = np.mean(np.abs(y_in[100:]) ** 2)
        p_out = np.mean(np.abs(y_out[100:]) ** 2)
        assert p_in > 0.9
        assert p_out < 1e-3

    def test_streaming_matches_oneshot(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
        dec_a = HalfBandDecimator(31)
        y_once = dec_a.process(x)
        dec_b = HalfBandDecimator(31)
        parts = [dec_b.process(x[:333]), dec_b.process(x[333:700]), dec_b.process(x[700:])]
        y_stream = np.concatenate(parts)
        np.testing.assert_allclose(y_stream, y_once, atol=1e-9)


class TestSrrc:
    def test_unit_energy(self):
        h = srrc(0.35, 4, 8)
        assert np.isclose(np.sum(h * h), 1.0)

    def test_symmetric(self):
        h = srrc(0.22, 4, 10)
        np.testing.assert_allclose(h, h[::-1], atol=1e-12)

    def test_cascade_is_nyquist(self):
        """SRRC * SRRC must have zero ISI at symbol spacing."""
        sps = 4
        h = srrc(0.35, sps, 10)
        g = np.convolve(h, h)
        center = len(g) // 2
        taps_at_symbols = g[center % sps :: sps]
        peak = g[center]
        others = taps_at_symbols[np.abs(taps_at_symbols - peak) > 1e-9]
        assert np.all(np.abs(others) < 0.01 * peak)

    def test_singularity_handled(self):
        # t = 1/(4 beta) lands exactly on a sample for beta=0.25, sps=4
        h = srrc(0.25, 4, 8)
        assert np.all(np.isfinite(h))

    @pytest.mark.parametrize("beta", [0.0, 1.5, -0.2])
    def test_invalid_beta(self, beta):
        with pytest.raises(ValueError):
            srrc(beta, 4, 8)

    def test_rc_zero_isi_directly(self):
        sps = 8
        h = rc(0.35, sps, 12)
        center = len(h) // 2
        for k in range(1, 5):
            assert abs(h[center + k * sps]) < 1e-9
        assert h[center] == 1.0

    def test_rc_singularity(self):
        h = rc(0.5, 4, 8)
        assert np.all(np.isfinite(h))


class TestFirFilter:
    def test_streaming_equals_oneshot(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(500) + 1j * rng.standard_normal(500)
        taps = design_lowpass(41, 0.2)
        f1 = FirFilter(taps)
        y1 = f1.process(x)
        f2 = FirFilter(taps)
        y2 = np.concatenate([f2.process(c) for c in np.split(x, [100, 101, 350])])
        np.testing.assert_allclose(y1, y2, atol=1e-10)

    def test_impulse_response_recovered(self):
        taps = design_lowpass(21, 0.3)
        f = FirFilter(taps)
        x = np.zeros(40)
        x[0] = 1.0
        y = f.process(x)
        np.testing.assert_allclose(y[:21].real, taps, atol=1e-12)

    def test_reset_clears_state(self):
        taps = design_lowpass(21, 0.3)
        f = FirFilter(taps)
        f.process(np.ones(50))
        f.reset()
        y = f.process(np.zeros(30))
        np.testing.assert_allclose(y, 0.0, atol=1e-15)

    def test_empty_taps_rejected(self):
        with pytest.raises(ValueError):
            FirFilter(np.array([]))

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_chunking_invariance_property(self, split):
        rng = np.random.default_rng(split)
        x = rng.standard_normal(64)
        taps = design_lowpass(9, 0.25)
        whole = FirFilter(taps).process(x)
        f = FirFilter(taps)
        cut = 8 * split
        chunked = np.concatenate([f.process(x[:cut]), f.process(x[cut:])])
        np.testing.assert_allclose(chunked, whole, atol=1e-10)


class TestUpsampleAndDelay:
    def test_upsample_places_zeros(self):
        y = upsample(np.array([1.0, 2.0]), 3)
        np.testing.assert_array_equal(y, [1, 0, 0, 2, 0, 0])

    def test_upsample_identity(self):
        x = np.arange(5.0)
        np.testing.assert_array_equal(upsample(x, 1), x)

    def test_upsample_invalid(self):
        with pytest.raises(ValueError):
            upsample(np.arange(4), 0)

    def test_fractional_delay_delays(self):
        n = 256
        t = np.arange(n)
        x = np.sin(2 * np.pi * 0.02 * t)
        h = fractional_delay_filter(0.5, 31)
        y = np.convolve(x, h)[15 : 15 + n]
        expected = np.sin(2 * np.pi * 0.02 * (t - 0.5))
        np.testing.assert_allclose(y[20:-20], expected[20:-20], atol=5e-3)


class TestPolyphaseDecimator:
    def test_matches_filter_then_downsample(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(240) + 1j * rng.standard_normal(240)
        taps = design_lowpass(33, 0.1)
        m = 4
        pd = PolyphaseDecimator(taps, m)
        y = pd.process(x)
        from scipy.signal import fftconvolve

        ref = fftconvolve(x, taps, mode="full")[: len(x) : m]
        np.testing.assert_allclose(y, ref, atol=1e-10)

    def test_bad_block_length(self):
        pd = PolyphaseDecimator(design_lowpass(9, 0.2), 4)
        with pytest.raises(ValueError):
            pd.process(np.zeros(10))

    @pytest.mark.parametrize("m,ntaps", [(2, 15), (3, 31), (5, 33)])
    def test_matches_reference_for_various_m(self, m, ntaps):
        rng = np.random.default_rng(11 + m)
        n = 60 * m
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        taps = design_lowpass(ntaps, 0.8 / (2 * m))
        from scipy.signal import fftconvolve

        ref = fftconvolve(x, taps, mode="full")[: len(x) : m]
        got = PolyphaseDecimator(taps, m).process(x)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_no_full_rate_convolution(self, monkeypatch):
        """Regression: the m>=2 path must never filter at the input rate.

        The polyphase identity means each branch convolves a
        decimated-by-m stream with ~ntaps/m taps.  The old
        implementation convolved the full-rate input with the full
        filter (``fftconvolve(x, taps)``) and threw away m-1 of every m
        outputs.  Verified two ways: (a) the module-level
        ``fftconvolve`` is never called, (b) every ``np.convolve``
        operand is at the decimated rate.
        """
        import repro.dsp.filters as filters_mod

        def _boom(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("full-rate fftconvolve called for m >= 2")

        lengths = []
        real_convolve = np.convolve

        def _spy(a, v, mode="full"):
            lengths.append(max(len(np.atleast_1d(a)), len(np.atleast_1d(v))))
            return real_convolve(a, v, mode)

        rng = np.random.default_rng(7)
        m = 4
        x = rng.standard_normal(240) + 1j * rng.standard_normal(240)
        taps = design_lowpass(33, 0.1)
        pd = PolyphaseDecimator(taps, m)

        monkeypatch.setattr(filters_mod, "fftconvolve", _boom)
        monkeypatch.setattr(np, "convolve", _spy)
        y = pd.process(x)

        monkeypatch.undo()
        from scipy.signal import fftconvolve

        ref = fftconvolve(x, taps, mode="full")[: len(x) : m]
        np.testing.assert_allclose(y, ref, atol=1e-10)
        assert lengths, "expected the branch path to use np.convolve"
        # every convolution operand is at the decimated rate
        assert max(lengths) <= len(x) // m

    def test_m1_passthrough_filters_full_rate(self):
        rng = np.random.default_rng(8)
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        taps = design_lowpass(9, 0.2)
        from scipy.signal import fftconvolve

        ref = fftconvolve(x, taps, mode="full")[: len(x)]
        np.testing.assert_allclose(
            PolyphaseDecimator(taps, 1).process(x), ref, atol=1e-10
        )
