"""Tests for the DBFN and the carrier DEMUX."""

import numpy as np
import pytest

from repro.dsp.beamforming import Dbfn, array_response, steering_vector
from repro.dsp.demux import DdcBank, PolyphaseChannelizer, multiplex_carriers
from repro.dsp.nco import mix


class TestSteering:
    def test_boresight_all_ones(self):
        np.testing.assert_allclose(steering_vector(8, 0.0), np.ones(8))

    def test_unit_magnitude(self):
        a = steering_vector(16, 0.3)
        np.testing.assert_allclose(np.abs(a), 1.0)

    def test_invalid_elements(self):
        with pytest.raises(ValueError):
            steering_vector(0, 0.1)


class TestDbfn:
    def test_beam_gain_at_steering_direction(self):
        bf = Dbfn(num_elements=8)
        b = bf.point_beam(0.2)
        assert abs(bf.beam_gain_db(b, 0.2)) < 0.01  # unit gain (0 dB)

    def test_off_axis_rejection(self):
        bf = Dbfn(num_elements=16)
        b = bf.point_beam(0.0)
        # far off-axis gain should be well below mainlobe
        assert bf.beam_gain_db(b, 0.8) < -10.0

    def test_form_beams_separates_sources(self):
        """Two plane waves from distinct DOAs -> two beams, each recovers one."""
        rng = np.random.default_rng(0)
        ne, n = 16, 2048
        th1, th2 = -0.35, 0.4
        s1 = np.exp(2j * np.pi * 0.013 * np.arange(n))
        s2 = np.exp(2j * np.pi * 0.037 * np.arange(n))
        a1 = steering_vector(ne, th1)
        a2 = steering_vector(ne, th2)
        elements = np.outer(a1, s1) + np.outer(a2, s2)
        elements += 0.01 * (
            rng.standard_normal((ne, n)) + 1j * rng.standard_normal((ne, n))
        )
        bf = Dbfn(num_elements=ne)
        bf.point_beam(th1)
        bf.point_beam(th2)
        beams = bf.form_beams(elements)
        # each beam output should correlate strongly with its source
        c11 = abs(np.vdot(beams[0], s1)) / n
        c12 = abs(np.vdot(beams[0], s2)) / n
        c22 = abs(np.vdot(beams[1], s2)) / n
        c21 = abs(np.vdot(beams[1], s1)) / n
        assert c11 > 0.9 and c22 > 0.9
        assert c12 < 0.2 and c21 < 0.2

    def test_taper_reduces_sidelobes(self):
        ne = 16
        thetas = np.linspace(-np.pi / 2, np.pi / 2, 721)
        bf_u = Dbfn(ne)
        bf_u.point_beam(0.0)
        bf_t = Dbfn(ne)
        bf_t.point_beam(0.0, taper=np.hamming(ne))
        resp_u = array_response(bf_u.weight_matrix()[0], thetas)
        resp_t = array_response(bf_t.weight_matrix()[0], thetas)
        # compare peak sidelobe outside the (widened) mainlobe
        out = np.abs(np.sin(thetas)) > 0.3
        psl_u = resp_u[out].max() / resp_u.max()
        psl_t = resp_t[out].max() / resp_t.max()
        assert psl_t < psl_u

    def test_wrong_element_count_rejected(self):
        bf = Dbfn(4)
        bf.point_beam(0.0)
        with pytest.raises(ValueError):
            bf.form_beams(np.zeros((5, 10), dtype=complex))

    def test_no_beams_error(self):
        with pytest.raises(ValueError):
            Dbfn(4).weight_matrix()

    def test_taper_shape_validated(self):
        with pytest.raises(ValueError):
            Dbfn(4).point_beam(0.0, taper=np.ones(3))


def _carrier_test_signal(m, nsym, seed):
    """M narrowband QPSK-ish streams multiplexed onto M uniform carriers.

    The returned reference streams are at the *channel* rate: the
    multiplexer upsamples each by m, so a decimate-by-m demux brings
    them back to the original rate (plus filter group delay).
    """
    rng = np.random.default_rng(seed)
    bb = np.exp(1j * (np.pi / 4 + np.pi / 2 * rng.integers(0, 4, (m, nsym))))
    # hold each symbol for 8 samples to keep it narrowband
    bb = np.repeat(bb, 8, axis=1)
    wide = multiplex_carriers(bb, m)
    return bb, wide


def _best_lag_correlation(got, ref, guard, max_lag):
    """Peak normalized cross-correlation over non-negative lags."""
    n = min(len(got), len(ref))
    best = 0.0
    for lag in range(max_lag):
        g = got[guard + lag : n - guard]
        r = ref[guard : n - guard - lag]
        length = min(len(g), len(r))
        g, r = g[:length], r[:length]
        denom = np.linalg.norm(g) * np.linalg.norm(r)
        if denom > 1e-30:
            best = max(best, abs(np.vdot(g, r)) / denom)
    return best


class TestDdcBank:
    def test_recovers_each_carrier(self):
        m = 4
        bb, wide = _carrier_test_signal(m, 64, seed=1)
        bank = DdcBank([k / m for k in range(m)], decim=m)
        out = bank.process(wide)
        assert out.shape[0] == m
        for k in range(m):
            c = _best_lag_correlation(out[k], bb[k], guard=64, max_lag=40)
            assert c > 0.9, f"carrier {k} correlation {c}"

    def test_invalid_decim(self):
        with pytest.raises(ValueError):
            DdcBank([0.0], decim=0)


class TestPolyphaseChannelizer:
    def test_channel_isolation(self):
        """A tone in channel k appears in output k and nowhere else."""
        m = 8
        pc = PolyphaseChannelizer(m, taps_per_branch=16)
        n = m * 512
        for k in (0, 3, 7):
            # tone slightly offset inside channel k
            f = k / m + 0.3 / (2 * m)
            x = np.exp(2j * np.pi * f * np.arange(n))
            y = pc.process(x)
            powers = np.mean(np.abs(y[:, 64:]) ** 2, axis=1)
            assert np.argmax(powers) == k
            others = np.delete(powers, k)
            assert powers[k] > 50 * others.max()

    def test_block_length_validated(self):
        pc = PolyphaseChannelizer(4)
        with pytest.raises(ValueError):
            pc.process(np.zeros(10))

    def test_needs_two_channels(self):
        with pytest.raises(ValueError):
            PolyphaseChannelizer(1)

    def test_recovers_multiplexed_carriers(self):
        """The channelizer recovers every stream of a synthesized multiplex."""
        m = 4
        bb, wide = _carrier_test_signal(m, 128, seed=2)
        pc = PolyphaseChannelizer(m, taps_per_branch=24)
        n = (len(wide) // m) * m
        y = pc.process(wide[:n])
        for k in range(m):
            c = _best_lag_correlation(y[k], bb[k], guard=96, max_lag=60)
            assert c > 0.9, f"channel {k}: corr {c}"
