"""Tests for the design-cache registry (repro.caching)."""

import numpy as np
import pytest

from repro.caching import (
    array_cache_key,
    cached_design,
    design_cache_stats,
    freeze,
)


class TestArrayCacheKey:
    def test_equal_contents_equal_keys(self):
        a = np.arange(6, dtype=np.float64)
        b = np.arange(6, dtype=np.float64)
        assert array_cache_key(a) == array_cache_key(b)
        assert hash(array_cache_key(a)) == hash(array_cache_key(b))

    def test_shape_distinguished(self):
        a = np.zeros(4)
        b = np.zeros((2, 2))
        assert array_cache_key(a) != array_cache_key(b)

    def test_dtype_distinguished(self):
        a = np.zeros(4, dtype=np.float64)
        b = np.zeros(4, dtype=np.complex128)
        assert array_cache_key(a) != array_cache_key(b)

    def test_contents_distinguished(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.0, 3.0])
        assert array_cache_key(a) != array_cache_key(b)

    def test_noncontiguous_input_keyed_by_logical_contents(self):
        base = np.arange(10, dtype=np.float64)
        view = base[::2]
        assert array_cache_key(view) == array_cache_key(view.copy())

    def test_key_reconstructs_array(self):
        arr = np.arange(12, dtype=np.int8).reshape(3, 4)
        shape, dtype, raw = array_cache_key(arr)
        back = np.frombuffer(raw, dtype=dtype).reshape(shape)
        np.testing.assert_array_equal(back, arr)


class TestRegistry:
    def test_frozen_arrays_reject_mutation(self):
        arr = freeze(np.ones(4))
        with pytest.raises(ValueError):
            arr[0] = 2.0

    def test_duplicate_name_rejected(self):
        @cached_design("test.caching.dup", maxsize=2)
        def _a(x):
            return x

        with pytest.raises(ValueError):

            @cached_design("test.caching.dup", maxsize=2)
            def _b(x):
                return x

    def test_stats_track_hits_and_misses(self):
        @cached_design("test.caching.stats", maxsize=4)
        def table(n):
            return freeze(np.arange(n))

        table(3)
        table(3)
        table(5)
        info = design_cache_stats()["test.caching.stats"]
        assert info["hits"] == 1
        assert info["misses"] == 2
        assert info["currsize"] == 2

    def test_cdma_code_tables_registered_on_import(self):
        from repro.dsp import cdma  # noqa: F401  (registers on import)

        stats = design_cache_stats()
        for name in (
            "cdma.m_sequence",
            "cdma.gold_code",
            "cdma.ovsf_code",
            "cdma.spreading_code",
            "cdma.acq_code_fft",
        ):
            assert name in stats, name
