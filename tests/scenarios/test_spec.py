"""Spec layer: validation, serialization round-trip, hashing, profiles."""

import math

import pytest

from repro.scenarios import (
    FadeSegment,
    FaultEvent,
    ReconfigAction,
    ScenarioError,
    ScenarioSpec,
    SurgeProfile,
    TrafficMix,
)

pytestmark = pytest.mark.scenario


def test_valid_spec_passes():
    spec = ScenarioSpec(name="ok", frames=8)
    assert spec.validate() is spec
    assert spec.problems() == []


def test_validation_collects_every_problem_at_once():
    spec = ScenarioSpec(
        name="",
        frames=0,
        num_carriers=1,
        traffic=TrafficMix(occupancy=2.0),
        faults=(FaultEvent(frame=99, kind="blank", carrier=7),),
    )
    problems = spec.problems()
    # one pass reports all of them, not just the first
    assert len(problems) >= 5
    with pytest.raises(ScenarioError) as err:
        spec.validate()
    for p in problems:
        assert p in str(err.value)


@pytest.mark.parametrize(
    "fault,fragment",
    [
        (FaultEvent(frame=2, kind="nonsense"), "kind"),
        (FaultEvent(frame=2, kind="blank"), "carrier"),
        (FaultEvent(frame=2, kind="latchup.demod", carrier=9), "carrier"),
        (FaultEvent(frame=-1, kind="seu.decoder"), "frame"),
    ],
)
def test_bad_faults_are_rejected(fault, fragment):
    spec = ScenarioSpec(name="bad-fault", frames=8, faults=(fault,))
    assert any(fragment in p for p in spec.problems())


def test_bad_reconfig_is_rejected():
    spec = ScenarioSpec(
        name="bad-rc",
        frames=8,
        reconfigs=(
            ReconfigAction(frame=2, equipment="demod0", function="x", protocol="carrier-pigeon"),
        ),
    )
    assert any("protocol" in p for p in spec.problems())


def test_round_trip_preserves_everything():
    spec = ScenarioSpec(
        name="rt",
        description="round trip",
        frames=12,
        num_carriers=4,
        seed=99,
        traffic=TrafficMix(occupancy=0.7, weights=(1.0, 0.5, 0.25, 1.0)),
        fades=(FadeSegment(start=2, end=10, peak_db=6.0, shape="step"),),
        faults=(FaultEvent(frame=3, kind="blank", carrier=1, duration=2),),
        reconfigs=(ReconfigAction(frame=1, equipment="decod0", function="decod.turbo"),),
        expected_final_active=4,
    )
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.spec_hash() == spec.spec_hash()


def test_from_dict_rejects_garbage():
    with pytest.raises(ScenarioError):
        ScenarioSpec.from_dict({"name": "x", "frames": 4, "bogus_key": 1})


def test_spec_hash_is_sensitive_to_content():
    a = ScenarioSpec(name="h", frames=8)
    b = ScenarioSpec(name="h", frames=9)
    assert a.spec_hash() != b.spec_hash()
    assert a.spec_hash() == ScenarioSpec(name="h", frames=8).spec_hash()


def test_fade_profile_shapes():
    step = ScenarioSpec(
        name="s",
        frames=12,
        fades=(FadeSegment(start=4, end=8, peak_db=5.0, shape="step"),),
    )
    assert step.fade_db(3) == 0.0
    assert step.fade_db(4) == 5.0
    assert step.fade_db(7) == 5.0
    assert step.fade_db(8) == 0.0
    ramp = ScenarioSpec(
        name="r",
        frames=40,
        fades=(FadeSegment(start=8, end=32, peak_db=8.0, shape="ramp"),),
    )
    mid = (8 + 32) // 2
    assert math.isclose(ramp.fade_db(mid), 8.0, rel_tol=0.15)
    assert ramp.fade_db(8) < 2.0
    assert ramp.fade_db(31) < 2.0
    # superposition of overlapping segments
    both = ScenarioSpec(
        name="b",
        frames=12,
        fades=(
            FadeSegment(start=2, end=10, peak_db=3.0, shape="step"),
            FadeSegment(start=4, end=6, peak_db=2.0, shape="step"),
        ),
    )
    assert both.fade_db(5) == 5.0


def test_severity_tracks_faults_and_fades():
    spec = ScenarioSpec(
        name="sev",
        frames=20,
        fades=(FadeSegment(start=2, end=6, peak_db=4.0, shape="step"),),
        faults=(
            FaultEvent(frame=8, kind="blank", carrier=0, duration=3),
            FaultEvent(frame=10, kind="latchup.demod", carrier=1),
        ),
    )
    assert spec.severity(0) == 0.0
    assert spec.severity(3) == 4.0
    assert spec.severity(9) == 1.0
    # the latch-up is permanent: severity stays elevated afterwards
    assert spec.severity(15) >= 1.0


class TestSurgeProfile:
    def test_multiplier_profile(self):
        surge = SurgeProfile(start=4, end=10, multiplier=5.0)
        assert surge.multiplier_at(3) == 1.0
        assert surge.multiplier_at(4) == 5.0
        assert surge.multiplier_at(9) == 5.0
        assert surge.multiplier_at(10) == 1.0

    def test_validation_collected_by_spec(self):
        spec = ScenarioSpec(
            name="bad-surge",
            frames=8,
            surge=SurgeProfile(start=6, end=20, multiplier=0.5),
        )
        with pytest.raises(ScenarioError) as err:
            spec.validate()
        msg = str(err.value)
        assert "surge: end 20 beyond mission" in msg
        assert "surge: multiplier 0.5 must be >= 1" in msg

    def test_round_trip_and_hash_sensitivity(self):
        with_surge = ScenarioSpec(
            name="s",
            frames=24,
            surge=SurgeProfile(start=8, end=16, multiplier=4.0),
        )
        back = ScenarioSpec.from_dict(with_surge.to_dict())
        assert back == with_surge
        assert back.spec_hash() == with_surge.spec_hash()
        without = ScenarioSpec(name="s", frames=24)
        assert ScenarioSpec.from_dict(without.to_dict()).surge is None
        assert without.spec_hash() != with_surge.spec_hash()
