"""Golden-trace conformance: every canonical mission must reproduce its
frozen trace hash and summary metrics -- twice in a row."""

import pytest

from repro.scenarios import (
    canonical_scenarios,
    default_golden_dir,
    diff_records,
    load_corpus,
    record_of,
    run_scenario,
)

pytestmark = pytest.mark.scenario

_SPECS = canonical_scenarios()


@pytest.fixture(scope="module")
def corpus():
    directory = default_golden_dir()
    assert directory.is_dir(), (
        f"golden corpus missing at {directory}; run "
        "`python -m repro.scenarios --regen`"
    )
    return load_corpus(directory)


def test_corpus_covers_every_canonical_scenario(corpus):
    assert sorted(corpus) == sorted(s.name for s in _SPECS)


@pytest.mark.parametrize("spec", _SPECS, ids=[s.name for s in _SPECS])
def test_scenario_matches_golden_record_twice(spec, corpus):
    frozen = corpus[spec.name]
    assert frozen.spec_hash == spec.spec_hash(), (
        f"{spec.name}: the catalog spec changed but the golden record was "
        "not regenerated (python -m repro.scenarios --regen)"
    )
    first = record_of(run_scenario(spec))
    drift = diff_records(frozen, first)
    assert not drift, (
        f"{spec.name} diverged from its golden record:\n  "
        + "\n  ".join(drift)
    )
    # and again: the trace hash must be stable run-to-run in-process
    second = record_of(run_scenario(spec))
    assert second.trace_hash == first.trace_hash, (
        f"{spec.name}: two consecutive runs produced different trace "
        "hashes -- nondeterminism in the stack"
    )
    assert second.metrics == first.metrics
