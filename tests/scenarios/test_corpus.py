"""Golden-record mechanics: round-trip, readable diffs, regen plumbing."""

import json

import pytest

from repro.scenarios import (
    GoldenRecord,
    ScenarioSpec,
    diff_records,
    record_of,
    run_scenario,
)
from repro.scenarios.corpus import load_corpus, regen_corpus, write_record

pytestmark = pytest.mark.scenario


def _tiny_spec(name="tiny", **kw):
    return ScenarioSpec(name=name, frames=6, recovery_tail=2, **kw)


@pytest.fixture(scope="module")
def tiny_record():
    return record_of(run_scenario(_tiny_spec()))


def test_record_json_round_trip(tiny_record):
    again = GoldenRecord.from_json(tiny_record.to_json())
    assert again == tiny_record
    # the serialized form is valid, sorted JSON
    payload = json.loads(tiny_record.to_json())
    assert payload["name"] == "tiny"
    assert payload["trace_hash"] == tiny_record.trace_hash


def test_write_and_load_corpus(tmp_path, tiny_record):
    path = write_record(tmp_path, tiny_record)
    assert path.name == "tiny.json"
    corpus = load_corpus(tmp_path)
    assert corpus == {"tiny": tiny_record}


def test_identical_records_diff_empty(tiny_record):
    assert diff_records(tiny_record, tiny_record) == []


def test_diff_is_readable_not_just_a_hash(tiny_record):
    """A drift report names the diverging metric/event, not only hashes."""
    drifted_metrics = dict(tiny_record.metrics)
    drifted_metrics["delivered"] = drifted_metrics["delivered"] - 2
    drifted_counts = dict(tiny_record.kind_counts)
    first_kind = sorted(drifted_counts)[0]
    drifted_counts[first_kind] += 3
    new = GoldenRecord(
        name=tiny_record.name,
        spec_hash=tiny_record.spec_hash,
        trace_hash="0" * 64,
        kind_counts=drifted_counts,
        metrics=drifted_metrics,
        spec=tiny_record.spec,
    )
    lines = diff_records(tiny_record, new)
    text = "\n".join(lines)
    assert "metric delivered" in text
    assert f"trace kind {first_kind}" in text
    assert "-> 0000" in text or "trace hash" in text


def test_diff_flags_spec_change(tiny_record):
    other = record_of(run_scenario(_tiny_spec(seed=1)))
    lines = diff_records(tiny_record, other)
    assert any("spec changed" in line for line in lines)


def test_regen_dry_run_against_fresh_corpus_is_noop(tmp_path):
    spec = _tiny_spec(name="regen-tiny")
    diffs = regen_corpus(directory=tmp_path, specs=[spec])
    assert diffs == {"regen-tiny": ["new record"]}
    diffs = regen_corpus(directory=tmp_path, specs=[spec], dry_run=True)
    assert diffs == {"regen-tiny": []}
    # dry run did not touch the file set
    assert [p.name for p in sorted(tmp_path.glob("*.json"))] == [
        "regen-tiny.json"
    ]


def test_regen_only_rejects_unknown_names(tmp_path):
    with pytest.raises(KeyError):
        regen_corpus(directory=tmp_path, only=["no-such-scenario"])
