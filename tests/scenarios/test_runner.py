"""Runner-level behaviour: determinism regression, invariant reporting,
exactly-once TC accounting, and the no-unseeded-RNG source audit."""

import dataclasses
import re
from pathlib import Path

import pytest

from repro.scenarios import (
    FaultEvent,
    ScenarioError,
    ScenarioSpec,
    result_violations,
    run_scenario,
)

pytestmark = pytest.mark.scenario

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _tiny(name="tiny-runner", **kw):
    return ScenarioSpec(name=name, frames=6, recovery_tail=2, **kw)


def test_same_seed_same_trace_hash_regression():
    """The nondeterminism-audit regression: two same-seed scenario runs
    must produce byte-identical canonical traces."""
    spec = _tiny()
    a = run_scenario(spec)
    b = run_scenario(spec)
    assert a.trace_hash == b.trace_hash
    assert a.kind_counts == b.kind_counts
    assert a.metrics == b.metrics


def test_different_seed_different_trace():
    a = run_scenario(_tiny())
    b = run_scenario(_tiny(seed=123))
    assert a.trace_hash != b.trace_hash


def test_invalid_spec_is_rejected_before_running():
    with pytest.raises(ScenarioError):
        run_scenario(ScenarioSpec(name="", frames=0))


def test_clean_run_has_no_violations():
    result = run_scenario(_tiny())
    assert result.completed
    assert result_violations(result) == []
    assert result.metrics["delivered"] == result.metrics["attempted"]


def test_violation_messages_name_the_broken_invariant():
    result = run_scenario(_tiny())
    rigged = dataclasses.replace(
        result, metrics={**result.metrics, "corrupt": 2}
    )
    assert any("silent corruption" in v for v in result_violations(rigged))
    rigged = dataclasses.replace(
        result, metrics={**result.metrics, "final_active": 1}
    )
    assert any("no recovery" in v for v in result_violations(rigged))
    rigged = dataclasses.replace(result, completed=False, error="Boom: x")
    assert any("did not complete" in v for v in result_violations(rigged))


def test_exactly_once_over_lossy_ground_link():
    """TC retransmissions on a lossy link never double-execute."""
    from repro.scenarios import catalog_by_name

    result = run_scenario(catalog_by_name()["lossy-ground"])
    m = result.metrics
    assert result_violations(result) == []
    assert m["gateway"]["executed"] == m["ncc"]["tc_issued"]
    assert m["reconfigs"] == [
        {
            "function": "decod.turbo",
            "protocol": "tftp",
            "success": True,
            "rolled_back": False,
        }
    ]
    # the swap really landed on board
    assert m["personalities"]["decod0"] == "decod.turbo"


def test_decoder_seu_recovers_via_fdir():
    spec = ScenarioSpec(
        name="seu-quick",
        frames=20,
        faults=(FaultEvent(frame=6, kind="seu.decoder", magnitude=200),),
    )
    result = run_scenario(spec)
    assert result_violations(result) == []
    assert result.metrics["actions"].get("decoder_reload", 0) >= 1


def test_no_unseeded_rng_in_src():
    """Nondeterminism audit: every RNG in ``src/`` must be seeded.

    Module-level ``np.random.*`` convenience calls and argument-less
    ``default_rng()`` would silently break trace-hash reproducibility;
    all randomness must flow through ``repro.sim.rng`` streams or an
    explicitly seeded generator.
    """
    forbidden = re.compile(
        r"np\.random\.(random|rand|randn|randint|choice|shuffle|seed|"
        r"normal|standard_normal|uniform|permutation)\s*\("
        r"|default_rng\(\s*\)"
        r"|np\.random\.RandomState"
    )
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if forbidden.search(line.split("#", 1)[0]):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    assert not offenders, "unseeded RNG use in src/:\n" + "\n".join(offenders)
