"""Seeded soak sweep: randomized scenario grids, every invariant, every
point run twice for trace-hash reproducibility."""

import pytest

from repro.scenarios import result_violations, run_scenario, soak_grid

pytestmark = pytest.mark.scenario

#: >= 5 seeds x >= 6 grid points (the acceptance floor)
SOAK_SEEDS = (7, 42, 101, 202, 303)
GRID_POINTS = 6


def test_grid_generation_is_deterministic():
    a = soak_grid(7, points=GRID_POINTS)
    b = soak_grid(7, points=GRID_POINTS)
    assert a == b
    assert len(a) == GRID_POINTS
    # different seeds explore different grids
    assert soak_grid(8, points=GRID_POINTS) != a


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_soak_sweep_holds_every_invariant(seed):
    for spec in soak_grid(seed, points=GRID_POINTS):
        first = run_scenario(spec)
        violations = result_violations(first)
        assert not violations, (
            f"{spec.name} ({spec.description}):\n  " + "\n  ".join(violations)
        )
        second = run_scenario(spec)
        assert second.trace_hash == first.trace_hash, (
            f"{spec.name}: same seed, different trace hash -- "
            "nondeterminism in the stack"
        )
