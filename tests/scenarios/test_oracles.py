"""Differential oracles: agreement on a healthy tree, and the reporting
path when a disagreement is rigged in."""

import numpy as np
import pytest

from repro.core.payload import RegenerativePayload
from repro.scenarios import (
    BatchScalarDecodeOracle,
    CdmaBatchScalarOracle,
    ModemABOracle,
    VcModeOracle,
    run_default_oracles,
)

pytestmark = pytest.mark.scenario


def test_all_oracles_agree():
    reports = run_default_oracles(seed=3)
    assert [r.agree for r in reports] == [True, True, True, True]
    for r in reports:
        assert r.cases > 0
        assert "agree" in str(r)


def test_oracles_are_deterministic():
    a = run_default_oracles(seed=5)
    b = run_default_oracles(seed=5)
    assert a == b


def test_vc_oracle_counts_every_sdu():
    rep = VcModeOracle(seed=1, sdus=4).run()
    assert rep.agree and rep.cases == 4


def test_modem_ab_oracle_alone():
    rep = ModemABOracle(seed=2, trials=4).run()
    assert rep.agree and rep.cases == 4


def test_cdma_oracle_alone():
    rep = CdmaBatchScalarOracle(seed=4).run()
    assert rep.agree and rep.cases == 8


def test_rigged_cdma_scalar_disagreement_is_detected(monkeypatch):
    """Corrupt the scalar receive path and the CDMA oracle must notice."""
    from repro.dsp.cdma import CdmaModem

    real = CdmaModem.receive

    def corrupted(self, samples, num_bits):
        out = dict(real(self, samples, num_bits))
        bits = np.array(out["bits"], copy=True)
        if len(bits):
            bits[0] ^= 1
        out["bits"] = bits
        return out

    monkeypatch.setattr(CdmaModem, "receive", corrupted)
    rep = CdmaBatchScalarOracle(seed=0).run()
    assert not rep.agree
    assert "bits differ" in rep.detail


def test_rigged_scalar_decode_disagreement_is_detected(monkeypatch):
    """Corrupt the scalar path and the oracle must say *where* it broke."""
    real = RegenerativePayload.decode_block

    def corrupted(self, llr, carrier=None):
        out = real(self, llr, carrier=carrier)
        bits = np.array(out["bits"], copy=True)
        if len(bits):
            bits[0] ^= 1
        out = dict(out)
        out["bits"] = bits
        return out

    monkeypatch.setattr(RegenerativePayload, "decode_block", corrupted)
    rep = BatchScalarDecodeOracle(seed=0, frames=1).run()
    assert not rep.agree
    assert "bits differ" in rep.detail
    assert "DISAGREE" in str(rep)
