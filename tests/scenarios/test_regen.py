"""The --regen CLI: dry run against the checked-in corpus is a no-op,
and the CLI surface behaves."""

import pytest

from repro.scenarios.__main__ import main

pytestmark = pytest.mark.scenario


def test_regen_dry_run_is_a_noop_against_checked_in_corpus(capsys):
    """Acceptance: `--regen --dry-run` reports zero drift on a fresh tree."""
    rc = main(["--regen", "--dry-run", "--only", "nominal", "--only", "decoder-seu"])
    out = capsys.readouterr().out
    assert rc == 0, f"dry-run regen found drift:\n{out}"
    assert "nominal" in out and "decoder-seu" in out
    assert "would change" not in out


def test_cli_list_names_all_scenarios(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("nominal", "rain-fade", "lossy-ground"):
        assert name in out


def test_cli_run_unknown_scenario_fails_cleanly(capsys):
    assert main(["--run", "no-such-mission"]) == 2


def test_cli_run_reports_summary(capsys):
    assert main(["--run", "nominal"]) == 0
    out = capsys.readouterr().out
    assert "trace hash" in out
    assert "delivered" in out
