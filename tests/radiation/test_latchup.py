"""Tests for the latch-up model (§4.2 'other effects')."""

import numpy as np
import pytest

from repro.radiation import LatchUpModel
from repro.sim import RngRegistry


class TestLatchUp:
    def test_unprotected_device_destroyed_by_first_event(self):
        lu = LatchUpModel(rate_per_device_day=10.0, protected=False)
        lu.advance(1.0, RngRegistry(1).stream("lu"))
        assert lu.events > 0
        assert lu.destroyed
        # further exposure is moot
        assert lu.advance(100.0, RngRegistry(1).stream("lu2")) == 0

    def test_protected_device_survives_with_outage(self):
        lu = LatchUpModel(rate_per_device_day=10.0, protected=True,
                          recovery_seconds=5.0)
        n = lu.advance(1.0, RngRegistry(2).stream("lu"))
        assert n > 0
        assert not lu.destroyed
        assert np.isclose(lu.outage_seconds, 5.0 * n)

    def test_event_rate_poisson_mean(self):
        lu = LatchUpModel(rate_per_device_day=0.5, protected=True)
        rng = RngRegistry(3).stream("lu")
        total = sum(lu.advance(1.0, rng) for _ in range(2000))
        assert 0.85 * 1000 < total < 1.15 * 1000

    def test_survival_probability(self):
        lu = LatchUpModel(rate_per_device_day=1e-4, protected=False)
        p = lu.survival_probability(15 * 365.0)
        assert np.isclose(p, np.exp(-1e-4 * 15 * 365))
        assert LatchUpModel(protected=True).survival_probability(1e6) == 1.0

    def test_rare_events_at_realistic_rate(self):
        """At the default 1e-4/day a 15-year mission sees only a few."""
        lu = LatchUpModel(protected=True)
        rng = RngRegistry(4).stream("lu")
        total = lu.advance(15 * 365.0, rng)
        assert total < 10

    def test_validation(self):
        with pytest.raises(ValueError):
            LatchUpModel(rate_per_device_day=-1.0)
        with pytest.raises(ValueError):
            LatchUpModel().advance(-1.0, RngRegistry(0).stream("x"))
