"""Tests for the radiation environment and effects models."""

import numpy as np
import pytest

from repro.radiation import (
    GEO,
    LEO,
    MEO,
    RadiationEnvironment,
    SeuProcess,
    SolarActivity,
    TidAccumulator,
)
from repro.sim import RngRegistry


class TestEnvironment:
    def test_geo_nominal_matches_table1(self):
        """The paper's Table 1: 1e-7 SEU/bit/day for a GEO satellite."""
        env = RadiationEnvironment(orbit=GEO, activity=SolarActivity.NOMINAL)
        assert np.isclose(env.seu_rate_per_bit_day(), 1e-7, rtol=1e-6)

    def test_per_second_consistent(self):
        env = RadiationEnvironment()
        assert np.isclose(
            env.seu_rate_per_bit_second() * 86_400, env.seu_rate_per_bit_day()
        )

    def test_solar_max_increases_rates(self):
        nom = RadiationEnvironment(activity=SolarActivity.NOMINAL)
        mx = RadiationEnvironment(activity=SolarActivity.MAX)
        assert mx.seu_rate_per_bit_day() > nom.seu_rate_per_bit_day()
        assert mx.dose_rate_krad_year() > nom.dose_rate_krad_year()

    def test_quiet_decreases_rates(self):
        nom = RadiationEnvironment(activity=SolarActivity.NOMINAL)
        q = RadiationEnvironment(activity=SolarActivity.QUIET)
        assert q.seu_rate_per_bit_day() < nom.seu_rate_per_bit_day()

    def test_leo_softer_than_geo(self):
        geo = RadiationEnvironment(orbit=GEO)
        leo = RadiationEnvironment(orbit=LEO)
        assert leo.seu_rate_per_bit_day() < geo.seu_rate_per_bit_day()

    def test_meo_belt_dose_dominates(self):
        geo = RadiationEnvironment(orbit=GEO)
        meo = RadiationEnvironment(orbit=MEO)
        assert meo.dose_rate_krad_year() > geo.dose_rate_krad_year()

    def test_device_factor_scales_seu(self):
        hard = RadiationEnvironment(device_seu_factor=1.0)
        soft = RadiationEnvironment(device_seu_factor=50.0)
        assert np.isclose(
            soft.seu_rate_per_bit_day(), 50 * hard.seu_rate_per_bit_day()
        )

    def test_expected_upsets(self):
        env = RadiationEnvironment()
        # 1e6 bits over 10 days at 1e-7/bit/day = 1 upset
        assert np.isclose(env.expected_upsets(1_000_000, 10 * 86_400), 1.0)

    def test_expected_upsets_validation(self):
        with pytest.raises(ValueError):
            RadiationEnvironment().expected_upsets(-1, 10)


class TestSeuProcess:
    def test_poisson_mean(self):
        env = RadiationEnvironment(device_seu_factor=1000.0)
        rng = RngRegistry(1).stream("seu")
        proc = SeuProcess(env, num_bits=10_000_000, rng=rng)
        day = 86_400.0
        counts = [len(proc.upsets_in(day)) for _ in range(200)]
        expected = env.expected_upsets(10_000_000, day)
        assert 0.8 * expected < np.mean(counts) < 1.2 * expected

    def test_indices_in_range(self):
        env = RadiationEnvironment(device_seu_factor=1e6)
        proc = SeuProcess(env, num_bits=1000, rng=RngRegistry(2).stream("s"))
        idx = proc.upsets_in(86_400.0)
        assert len(idx) > 0
        assert idx.min() >= 0 and idx.max() < 1000

    def test_waiting_time_mean(self):
        env = RadiationEnvironment(device_seu_factor=1000.0)
        proc = SeuProcess(env, num_bits=10_000_000, rng=RngRegistry(3).stream("s"))
        rate = 10_000_000 * env.seu_rate_per_bit_second()
        times = [proc.time_to_next_upset() for _ in range(500)]
        assert 0.8 / rate < np.mean(times) < 1.25 / rate

    def test_validation(self):
        env = RadiationEnvironment()
        with pytest.raises(ValueError):
            SeuProcess(env, 0, RngRegistry(0).stream("x"))
        proc = SeuProcess(env, 10, RngRegistry(0).stream("x"))
        with pytest.raises(ValueError):
            proc.upsets_in(-1.0)


class TestTid:
    def test_mh1rt_lifetime_exceeds_15_years_at_geo(self):
        """200 krad at GEO dose rates: far beyond a satellite lifetime."""
        acc = TidAccumulator(tolerance_krad=200.0)
        years = acc.lifetime_years(RadiationEnvironment(orbit=GEO))
        assert years > 15.0

    def test_state_transitions(self):
        acc = TidAccumulator(tolerance_krad=10.0, degradation_onset=0.8)
        env = RadiationEnvironment(orbit=MEO, activity=SolarActivity.MAX)
        assert acc.state == "nominal"
        while acc.state == "nominal":
            acc.accumulate(env, 0.05)
        assert acc.state == "degraded"
        while acc.state == "degraded":
            acc.accumulate(env, 0.05)
        assert acc.state == "failed"

    def test_validation(self):
        with pytest.raises(ValueError):
            TidAccumulator(0.0)
        with pytest.raises(ValueError):
            TidAccumulator(100.0, degradation_onset=0.0)
        acc = TidAccumulator(100.0)
        with pytest.raises(ValueError):
            acc.accumulate(RadiationEnvironment(), -1.0)
