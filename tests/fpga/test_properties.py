"""Property-based tests across the FPGA substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import Bitstream, Fpga
from repro.fpga.memory import OnboardMemory


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=32),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_bitstream_roundtrip_any_geometry(rows, cols, bpc, seed):
    rng = np.random.default_rng(seed)
    bs = Bitstream.random("f", rows, cols, bpc, rng)
    back = Bitstream.from_bytes(bs.to_bytes())
    np.testing.assert_array_equal(back.frames, bs.frames)
    assert back.crc32() == bs.crc32()


@given(st.lists(st.integers(min_value=0, max_value=2047), min_size=0, max_size=64))
@settings(max_examples=40, deadline=None)
def test_upset_twice_restores_property(indices):
    """Flipping any multiset of bits twice restores the configuration."""
    fpga = Fpga(rows=8, cols=8, bits_per_clb=32)
    bs = Bitstream.random("f", 8, 8, 32, np.random.default_rng(0))
    fpga.configure(bs)
    idx = np.asarray(indices, dtype=np.int64)
    fpga.upset_bits(idx)
    fpga.upset_bits(idx)
    assert fpga.corrupted_bits() == 0


@given(st.lists(st.integers(min_value=0, max_value=2047), min_size=1, max_size=64,
                unique=True))
@settings(max_examples=40, deadline=None)
def test_corrupted_bits_counts_unique_flips(indices):
    fpga = Fpga(rows=8, cols=8, bits_per_clb=32)
    bs = Bitstream.random("f", 8, 8, 32, np.random.default_rng(1))
    fpga.configure(bs)
    fpga.upset_bits(np.asarray(indices, dtype=np.int64))
    assert fpga.corrupted_bits() == len(indices)


@given(st.binary(min_size=0, max_size=300))
@settings(max_examples=30, deadline=None)
def test_memory_roundtrip_any_payload(payload):
    m = OnboardMemory(1 << 16)
    m.store("f", payload)
    assert m.load("f") == payload


@given(
    st.binary(min_size=10, max_size=120),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_memory_single_upset_always_corrected(payload, seed):
    """One flipped bit anywhere in the store is corrected on load."""
    m = OnboardMemory(1 << 16)
    m.store("f", payload)
    m.upset_random_bits(1, np.random.default_rng(seed))
    assert m.load("f") == payload
