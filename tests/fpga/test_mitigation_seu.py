"""Tests for SEU mitigation techniques and the SEU injector."""

import numpy as np
import pytest

from repro.fpga import (
    BlindScrubber,
    Bitstream,
    DuplicationWithComparison,
    Fpga,
    ReadbackScrubber,
    SeuInjector,
    TmrProtectedFunction,
)
from repro.radiation import GEO, RadiationEnvironment, SolarActivity
from repro.sim import RngRegistry


def configured_fpga(seed=0, **kw):
    kw.setdefault("rows", 8)
    kw.setdefault("cols", 8)
    kw.setdefault("bits_per_clb", 32)
    fpga = Fpga(**kw)
    bs = Bitstream.random(
        "f", kw["rows"], kw["cols"], kw["bits_per_clb"], RngRegistry(seed).stream("b")
    )
    fpga.configure(bs)
    return fpga


class TestTmr:
    def test_failure_probability_is_pe_squared(self):
        """The paper's claim: P(false event) = (pe)^2 (leading order)."""
        pe = 0.02
        tmr = TmrProtectedFunction(pe)
        rng = RngRegistry(1).stream("tmr")
        wrong = tmr.evaluate(2_000_000, rng)
        measured = wrong.mean()
        theory = tmr.theoretical_error_probability()
        assert np.isclose(theory, 3 * pe**2 * (1 - pe) + pe**3)
        assert 0.8 * theory < measured < 1.2 * theory
        # and it is orders of magnitude below pe itself
        assert measured < pe / 10

    def test_gate_overhead_triples(self):
        tmr = TmrProtectedFunction(0.01)
        assert tmr.gate_overhead(10_000) > 30_000

    def test_validation(self):
        with pytest.raises(ValueError):
            TmrProtectedFunction(1.5)
        with pytest.raises(ValueError):
            TmrProtectedFunction(0.1, replicas=2)
        with pytest.raises(ValueError):
            TmrProtectedFunction(0.1).evaluate(0, RngRegistry(0).stream("x"))


class TestDuplication:
    def test_detects_but_does_not_correct(self):
        pe = 0.05
        dup = DuplicationWithComparison(pe)
        rng = RngRegistry(2).stream("dup")
        res = dup.evaluate(500_000, rng)
        # wrong outputs occur at ~pe (no correction)
        assert 0.9 * pe < res["wrong"].mean() < 1.1 * pe
        # nearly all wrong outputs are detected (missed only when both
        # replicas fail identically, prob pe^2)
        missed = np.mean(res["wrong"] & ~res["detected"])
        assert missed < pe**2 * 2

    def test_gate_overhead_doubles(self):
        dup = DuplicationWithComparison(0.01)
        assert 2 * 10_000 < dup.gate_overhead(10_000) < 3 * 10_000

    def test_tmr_costs_more_than_duplication(self):
        """The paper's §4.3 trade-off."""
        tmr = TmrProtectedFunction(0.01)
        dup = DuplicationWithComparison(0.01)
        assert tmr.gate_overhead(50_000) > dup.gate_overhead(50_000)


class TestReadbackScrubber:
    @pytest.mark.parametrize("mode", ["golden", "crc"])
    def test_repairs_all_corruption(self, mode):
        fpga = configured_fpga()
        fpga.power_on()
        scrub = ReadbackScrubber(fpga, mode=mode)
        scrub.snapshot()
        fpga.upset_bits(np.arange(0, 2048, 97))
        assert fpga.corrupted_bits() > 0
        scrub.scan_and_repair()
        assert fpga.corrupted_bits() == 0

    def test_crc_mode_uses_less_reference_memory(self):
        """The paper: CRC comparison 'is less gate consuming'."""
        fpga = configured_fpga(bits_per_clb=64)
        golden = ReadbackScrubber(fpga, mode="golden")
        crc = ReadbackScrubber(fpga, mode="crc")
        assert crc.reference_memory_bits() < golden.reference_memory_bits()

    def test_requires_partial_support(self):
        fpga = configured_fpga(supports_partial=False)
        with pytest.raises(ValueError):
            ReadbackScrubber(fpga)

    def test_crc_mode_requires_snapshot(self):
        fpga = configured_fpga()
        scrub = ReadbackScrubber(fpga, mode="crc")
        with pytest.raises(RuntimeError):
            scrub.scan_and_repair()

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ReadbackScrubber(configured_fpga(), mode="magic")

    def test_no_repair_on_clean_device(self):
        fpga = configured_fpga()
        scrub = ReadbackScrubber(fpga, mode="golden")
        assert scrub.scan_and_repair() == 0


class TestBlindScrubber:
    def test_scrub_clears_everything(self):
        fpga = configured_fpga()
        scrub = BlindScrubber(fpga, period=30.0)
        fpga.upset_bits(np.arange(0, 1000, 13))
        scrub.scrub()
        assert fpga.corrupted_bits() == 0
        assert scrub.scrubs == 1

    def test_residual_upsets_scale_with_period(self):
        fpga = configured_fpga()
        fast = BlindScrubber(fpga, period=10.0)
        slow = BlindScrubber(fpga, period=1000.0)
        rate = 0.01
        assert slow.expected_residual_upsets(rate) == 100 * fast.expected_residual_upsets(rate)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlindScrubber(configured_fpga(), period=0.0)
        with pytest.raises(ValueError):
            BlindScrubber(configured_fpga()).expected_residual_upsets(-1)


class TestSeuInjector:
    def test_advance_injects_poisson_counts(self):
        env = RadiationEnvironment(orbit=GEO, device_seu_factor=1e4)
        fpga = configured_fpga(rows=16, cols=16, bits_per_clb=64)
        inj = SeuInjector(fpga, env, RngRegistry(4).stream("seu"))
        total = 0
        for _ in range(50):
            total += inj.advance(86_400.0)
        expected = 50 * inj.expected_per_day()
        assert 0.7 * expected < total < 1.3 * expected

    def test_inject_exact_count(self):
        env = RadiationEnvironment()
        fpga = configured_fpga()
        inj = SeuInjector(fpga, env, RngRegistry(5).stream("seu"))
        inj.inject(10)
        assert fpga.stats["upsets_injected"] == 10

    def test_inject_validation(self):
        env = RadiationEnvironment()
        inj = SeuInjector(configured_fpga(), env, RngRegistry(6).stream("s"))
        with pytest.raises(ValueError):
            inj.inject(-1)

    def test_scrubbing_beats_no_mitigation(self):
        """End-to-end: corruption level with vs without periodic scrubbing."""
        env = RadiationEnvironment(device_seu_factor=5e5)  # accelerated test
        reg = RngRegistry(7)
        day = 86_400.0

        f1 = configured_fpga(seed=1)
        i1 = SeuInjector(f1, env, reg.stream("a"))
        for _ in range(20):
            i1.advance(day / 20)
        unmitigated = f1.corrupted_bits()

        f2 = configured_fpga(seed=1)
        i2 = SeuInjector(f2, env, reg.stream("b"))
        s2 = BlindScrubber(f2, period=day / 20)
        for _ in range(20):
            i2.advance(day / 20)
            s2.scrub()
        assert f2.corrupted_bits() == 0
        assert unmitigated > 0
