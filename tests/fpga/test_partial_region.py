"""Tests for partial-region reconfiguration (§4.4 chip-per-function)."""

import numpy as np
import pytest

from repro.core import default_registry
from repro.core.equipment import EquipmentError, ReconfigurableEquipment
from repro.fpga import Bitstream, Fpga, FpgaError, PowerState
from repro.sim import RngRegistry

GEOM = (8, 8, 32)


def configured(**kw):
    kw.setdefault("rows", GEOM[0])
    kw.setdefault("cols", GEOM[1])
    kw.setdefault("bits_per_clb", GEOM[2])
    fpga = Fpga(**kw)
    bs = Bitstream.random("base", *GEOM, RngRegistry(0).stream("bs"))
    fpga.configure(bs)
    fpga.power_on()
    return fpga


class TestConfigureRegion:
    def test_rewrites_only_the_region(self):
        fpga = configured()
        before = fpga.readback_all()
        region = np.ones((2, 3, GEOM[2]), dtype=np.uint8)
        fpga.configure_region(1, 2, region)
        after = fpga.readback_all()
        np.testing.assert_array_equal(after[1:3, 2:5], region)
        mask = np.ones((8, 8), dtype=bool)
        mask[1:3, 2:5] = False
        np.testing.assert_array_equal(after[mask], before[mask])

    def test_device_stays_on(self):
        """The §4.3 property: partial configuration does not interrupt."""
        fpga = configured()
        fpga.configure_region(0, 0, np.zeros((1, 1, GEOM[2]), dtype=np.uint8))
        assert fpga.power is PowerState.ON

    def test_golden_updated_by_default(self):
        fpga = configured()
        fpga.configure_region(0, 0, np.ones((2, 2, GEOM[2]), dtype=np.uint8))
        assert fpga.corrupted_bits() == 0  # region is the new reference
        assert fpga.is_functional()

    def test_golden_preserved_when_asked(self):
        fpga = configured()
        new = 1 - fpga.golden_frame(0, 0)
        fpga.configure_region(
            0, 0, new[None, None, :], update_golden=False
        )
        assert fpga.corrupted_bits() == GEOM[2]  # counted as divergence

    def test_out_of_grid_rejected(self):
        fpga = configured()
        with pytest.raises(FpgaError):
            fpga.configure_region(7, 7, np.zeros((2, 2, GEOM[2]), dtype=np.uint8))

    def test_bad_shape_rejected(self):
        fpga = configured()
        with pytest.raises(FpgaError):
            fpga.configure_region(0, 0, np.zeros((2, 2, 7), dtype=np.uint8))

    def test_unsupported_device_rejected(self):
        """§4.4: 'major FPGAs are not partially configurable'."""
        fpga = configured(supports_partial=False)
        with pytest.raises(FpgaError):
            fpga.configure_region(0, 0, np.zeros((1, 1, GEOM[2]), dtype=np.uint8))

    def test_region_load_time_scales_with_area(self):
        fpga = configured()
        t_small = fpga.region_load_seconds(2, 2)
        t_large = fpga.region_load_seconds(8, 8)
        assert np.isclose(t_large, 16 * t_small)


class TestEquipmentRegionSwap:
    def _equipment(self, **kw):
        registry = default_registry()
        fpga = Fpga(rows=GEOM[0], cols=GEOM[1], bits_per_clb=GEOM[2], **kw)
        eq = ReconfigurableEquipment("demod0", fpga, registry, "modem")
        eq.load("modem.cdma")
        return eq

    def test_hot_swap_without_power_cycle(self):
        eq = self._equipment()
        t = eq.load_region("modem.tdma", 0, 0, 4, 8)  # swap the sync half
        assert eq.fpga.power is PowerState.ON
        assert eq.loaded_design == "modem.tdma"
        assert eq.operational
        assert t > 0

    def test_region_swap_faster_than_full_reload(self):
        eq = self._equipment()
        t_region = eq.load_region("modem.tdma", 0, 0, 4, 8)
        full = eq.fpga.config_load_seconds(
            eq.registry.get("modem.cdma").bitstream_for(*GEOM)
        )
        assert t_region < full

    def test_behaviour_swapped(self):
        from repro.dsp.tdma import TdmaModem

        eq = self._equipment()
        eq.load_region("modem.tdma")
        assert isinstance(eq.behaviour(), TdmaModem)

    def test_requires_loaded_design(self):
        registry = default_registry()
        fpga = Fpga(rows=GEOM[0], cols=GEOM[1], bits_per_clb=GEOM[2])
        eq = ReconfigurableEquipment("demod0", fpga, registry, "modem")
        with pytest.raises(EquipmentError):
            eq.load_region("modem.tdma")

    def test_kind_check_still_applies(self):
        eq = self._equipment()
        with pytest.raises(EquipmentError):
            eq.load_region("decod.turbo")

    def test_global_only_device_refuses(self):
        eq = self._equipment(supports_partial=False)
        with pytest.raises(EquipmentError):
            eq.load_region("modem.tdma")
