"""Tests for on-board memory/EDAC, the ASIC model and the gate model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import (
    MH1RT,
    GateModel,
    Mh1rtAsic,
    OnboardMemory,
    cdma_demodulator_gates,
    tdma_timing_recovery_gates,
    turbo_decoder_gates,
    viterbi_decoder_gates,
)
from repro.fpga.asic import MH1RT_018, MH1RT_025
from repro.fpga.memory import hamming_decode, hamming_encode
from repro.sim import RngRegistry


class TestHamming:
    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, byte):
        word = hamming_encode(byte)
        out, status = hamming_decode(word)
        assert out == byte and status == "ok"

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_single_error_corrected_property(self, byte, pos):
        word = hamming_encode(byte)
        word[pos] ^= 1
        out, status = hamming_decode(word)
        assert out == byte
        assert status == "corrected"

    def test_double_error_detected(self):
        word = hamming_encode(0xA5)
        word[0] ^= 1
        word[5] ^= 1
        _, status = hamming_decode(word)
        assert status == "double"

    def test_validation(self):
        with pytest.raises(ValueError):
            hamming_encode(256)
        with pytest.raises(ValueError):
            hamming_decode(np.zeros(5, dtype=np.uint8))


class TestOnboardMemory:
    def test_store_load_roundtrip(self):
        m = OnboardMemory(1 << 16)
        m.store("cfg.bit", b"hello bitstream")
        assert m.load("cfg.bit") == b"hello bitstream"

    def test_capacity_enforced(self):
        m = OnboardMemory(capacity_bytes=10)
        with pytest.raises(MemoryError):
            m.store("big", b"x" * 11)

    def test_replace_frees_old_space(self):
        m = OnboardMemory(capacity_bytes=10)
        m.store("f", b"x" * 10)
        m.store("f", b"y" * 10)  # replacement must not double-count
        assert m.load("f") == b"y" * 10

    def test_delete(self):
        m = OnboardMemory(1 << 10)
        m.store("f", b"abc")
        m.delete("f")
        assert m.files() == []
        with pytest.raises(KeyError):
            m.load("f")

    def test_single_upsets_corrected_on_load(self):
        m = OnboardMemory(1 << 16)
        payload = bytes(range(64))
        m.store("f", payload)
        m.upset_random_bits(10, RngRegistry(1).stream("mem"))
        assert m.load("f") == payload  # EDAC corrects scattered singles

    def test_scrub_counts_corrections(self):
        m = OnboardMemory(1 << 16)
        m.store("f", bytes(2000))
        m.upset_random_bits(10, RngRegistry(2).stream("mem"))
        fixed = m.scrub()
        assert fixed >= 1
        assert m.load("f") == bytes(2000)

    def test_used_free_accounting(self):
        m = OnboardMemory(capacity_bytes=100)
        m.store("a", b"12345")
        assert m.used_bytes == 5
        assert m.free_bytes == 95

    def test_validation(self):
        with pytest.raises(ValueError):
            OnboardMemory(0)
        m = OnboardMemory(10)
        with pytest.raises(ValueError):
            m.upset_random_bits(-1, RngRegistry(0).stream("x"))


class TestAsic:
    def test_table1_values(self):
        """Reproduce the paper's Table 1 exactly."""
        row = MH1RT.table_row()
        assert row["Number of gates"] == 1_200_000
        assert row["Voltage"] == "2.5 to 5.0V"
        assert row["TID"] == "200 Krads"
        assert row["SEU for GEO sat."] == 1e-7

    def test_not_reconfigurable(self):
        assert not MH1RT.reconfigurable
        with pytest.raises(NotImplementedError):
            MH1RT.reconfigure()

    def test_shrinks_increase_tid_constant_seu(self):
        """§4.1: 0.25/0.18 um parts reach 300 krad at constant SEU rate."""
        for part in (MH1RT_025, MH1RT_018):
            assert part.tid_tolerance_krad == 300.0
            assert part.seu_rate_geo_per_bit_day == MH1RT.seu_rate_geo_per_bit_day

    def test_factory_function_name(self):
        dev = Mh1rtAsic("decod.viterbi")
        assert dev.function == "decod.viterbi"

    def test_validation(self):
        from repro.fpga.asic import AsicDevice

        with pytest.raises(ValueError):
            AsicDevice("x", 0, 1.0, 2.0, 100.0, 1e-7, 0.35)
        with pytest.raises(ValueError):
            AsicDevice("x", 10, 3.0, 2.0, 100.0, 1e-7, 0.35)


class TestGateModel:
    def test_paper_tdma_estimate(self):
        """§2.3: timing recovery for MF-TDMA with 6 carriers ~ 200k gates."""
        gates = tdma_timing_recovery_gates(num_carriers=6)
        assert 150_000 < gates < 260_000

    def test_paper_cdma_estimate(self):
        """§2.3: CDMA with one user ~ 200k gates."""
        gates = cdma_demodulator_gates(num_users=1)
        assert 150_000 < gates < 260_000

    def test_multi_user_cdma_costs_more(self):
        """§2.3: '200000 gates < complexity with several users'."""
        assert cdma_demodulator_gates(4) > cdma_demodulator_gates(1)

    def test_both_fit_mh1rt_capacity(self):
        """The paper's conclusion: the swap fits the hardware profile."""
        assert tdma_timing_recovery_gates() < MH1RT.gate_count
        assert cdma_demodulator_gates() < MH1RT.gate_count

    def test_carrier_scaling_linear(self):
        g1 = tdma_timing_recovery_gates(num_carriers=1)
        g6 = tdma_timing_recovery_gates(num_carriers=6)
        assert np.isclose(g6, 6 * g1)

    def test_turbo_more_complex_than_viterbi(self):
        """Why decoder reconfiguration matters: architectures differ."""
        assert turbo_decoder_gates() > viterbi_decoder_gates()

    def test_user_scaling_monotone(self):
        costs = [cdma_demodulator_gates(n) for n in range(1, 6)]
        assert all(b > a for a, b in zip(costs, costs[1:]))

    def test_wider_datapath_costs_more(self):
        assert tdma_timing_recovery_gates(data_bits=12) > tdma_timing_recovery_gates(
            data_bits=8
        )

    def test_model_overridable(self):
        cheap = GateModel(mult_per_pp_bit=5.0)
        assert tdma_timing_recovery_gates(model=cheap) < tdma_timing_recovery_gates()

    def test_validation(self):
        with pytest.raises(ValueError):
            tdma_timing_recovery_gates(num_carriers=0)
        with pytest.raises(ValueError):
            cdma_demodulator_gates(num_users=0)
        with pytest.raises(ValueError):
            viterbi_decoder_gates(num_states=1)
