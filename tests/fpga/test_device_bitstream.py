"""Tests for the FPGA device model and bitstream container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import Bitstream, Fpga, FpgaError, PowerState
from repro.sim import RngRegistry


def make_pair(rows=8, cols=8, bpc=16, seed=0, **kw):
    rng = RngRegistry(seed).stream("bs")
    fpga = Fpga(rows=rows, cols=cols, bits_per_clb=bpc, **kw)
    bs = Bitstream.random("modem.test", rows, cols, bpc, rng)
    return fpga, bs


class TestBitstream:
    def test_roundtrip_serialization(self):
        _, bs = make_pair()
        restored = Bitstream.from_bytes(bs.to_bytes())
        assert restored.function == bs.function
        assert restored.version == bs.version
        np.testing.assert_array_equal(restored.frames, bs.frames)

    def test_crc_stable(self):
        _, bs = make_pair()
        assert bs.crc32() == Bitstream.from_bytes(bs.to_bytes()).crc32()

    def test_corrupted_file_rejected(self):
        _, bs = make_pair()
        data = bytearray(bs.to_bytes())
        data[30] ^= 0xFF
        with pytest.raises(ValueError):
            Bitstream.from_bytes(bytes(data))

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            Bitstream.from_bytes(b"short")

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Bitstream("f", 2, 2, 4, np.zeros((2, 2, 5), dtype=np.uint8))

    def test_nonbinary_frames_rejected(self):
        with pytest.raises(ValueError):
            Bitstream("f", 1, 1, 4, np.full((1, 1, 4), 3, dtype=np.uint8))

    def test_num_bits(self):
        _, bs = make_pair(rows=4, cols=4, bpc=8)
        assert bs.num_bits == 4 * 4 * 8

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_serialization_roundtrip_any_version(self, version):
        rng = np.random.default_rng(1)
        bs = Bitstream.random("f", 2, 3, 8, rng, version=version)
        assert Bitstream.from_bytes(bs.to_bytes()).version == version


class TestFpgaLifecycle:
    def test_initial_state_off_unconfigured(self):
        fpga, _ = make_pair()
        assert fpga.power is PowerState.OFF
        assert fpga.loaded_function is None
        assert not fpga.is_functional()

    def test_power_on_requires_configuration(self):
        fpga, _ = make_pair()
        with pytest.raises(FpgaError):
            fpga.power_on()

    def test_configure_then_on_is_functional(self):
        fpga, bs = make_pair()
        fpga.configure(bs)
        fpga.power_on()
        assert fpga.is_functional()
        assert fpga.loaded_function == "modem.test"

    def test_global_reload_requires_off(self):
        """The paper's sequence: switch off before reloading."""
        fpga, bs = make_pair()
        fpga.configure(bs)
        fpga.power_on()
        with pytest.raises(FpgaError):
            fpga.configure(bs)
        fpga.power_off()
        fpga.configure(bs)  # now legal

    def test_geometry_mismatch_rejected(self):
        fpga, _ = make_pair()
        rng = np.random.default_rng(0)
        wrong = Bitstream.random("f", 4, 4, 16, rng)
        with pytest.raises(FpgaError):
            fpga.configure(wrong)

    def test_config_crc_matches_bitstream(self):
        fpga, bs = make_pair()
        fpga.configure(bs)
        assert fpga.config_crc32() == bs.crc32()

    def test_config_load_time(self):
        fpga, bs = make_pair()
        fpga.config_write_rate = 1e6
        assert np.isclose(fpga.config_load_seconds(bs), bs.num_bits / 1e6)


class TestReadbackAndPartial:
    def test_readback_returns_loaded_frame(self):
        fpga, bs = make_pair()
        fpga.configure(bs)
        np.testing.assert_array_equal(fpga.readback(3, 5), bs.frames[3, 5])

    def test_readback_runs_while_on(self):
        """§4.3: CLBs 'can be read ... without interrupting operations'."""
        fpga, bs = make_pair()
        fpga.configure(bs)
        fpga.power_on()
        fpga.readback(0, 0)
        assert fpga.power is PowerState.ON

    def test_partial_configure_while_on(self):
        fpga, bs = make_pair()
        fpga.configure(bs)
        fpga.power_on()
        frame = np.ones(16, dtype=np.uint8)
        fpga.partial_configure(2, 2, frame)
        np.testing.assert_array_equal(fpga.readback(2, 2), frame)

    def test_partial_unsupported_device(self):
        """§4.4: 'major FPGAs are not partially configurable'."""
        fpga, bs = make_pair(supports_partial=False)
        fpga.configure(bs)
        with pytest.raises(FpgaError):
            fpga.partial_configure(0, 0, np.zeros(16, dtype=np.uint8))
        with pytest.raises(FpgaError):
            fpga.rewrite_all_from_golden()

    def test_address_validation(self):
        fpga, bs = make_pair()
        fpga.configure(bs)
        with pytest.raises(FpgaError):
            fpga.readback(8, 0)
        with pytest.raises(FpgaError):
            fpga.partial_configure(0, 9, np.zeros(16, dtype=np.uint8))

    def test_unconfigured_operations_fail(self):
        fpga, _ = make_pair()
        with pytest.raises(FpgaError):
            fpga.readback(0, 0)
        with pytest.raises(FpgaError):
            fpga.config_crc32()
        with pytest.raises(FpgaError):
            fpga.upset_bits(np.array([0]))


class TestIntegrity:
    def test_upset_changes_crc_and_counts(self):
        fpga, bs = make_pair()
        fpga.configure(bs)
        crc0 = fpga.config_crc32()
        fpga.upset_bits(np.array([0, 100, 500]))
        assert fpga.corrupted_bits() == 3
        assert fpga.config_crc32() != crc0

    def test_double_upset_same_bit_cancels(self):
        fpga, bs = make_pair()
        fpga.configure(bs)
        fpga.upset_bits(np.array([42]))
        fpga.upset_bits(np.array([42]))
        assert fpga.corrupted_bits() == 0

    def test_corrupted_clbs_addresses(self):
        fpga, bs = make_pair(rows=4, cols=4, bpc=8)
        fpga.configure(bs)
        # flip a bit in CLB (1, 2): flat index = ((1*4)+2)*8 + 3
        fpga.upset_bits(np.array([(1 * 4 + 2) * 8 + 3]))
        assert fpga.corrupted_clbs() == [(1, 2)]

    def test_repair_clb_restores(self):
        fpga, bs = make_pair()
        fpga.configure(bs)
        fpga.upset_bits(np.array([17]))
        (addr,) = fpga.corrupted_clbs()
        fpga.repair_clb(*addr)
        assert fpga.corrupted_bits() == 0

    def test_essential_upset_breaks_function(self):
        fpga, bs = make_pair(essential_fraction=1.0)  # every bit essential
        fpga.configure(bs)
        fpga.power_on()
        fpga.upset_bits(np.array([7]))
        assert not fpga.is_functional()
        fpga.rewrite_all_from_golden()
        assert fpga.is_functional()

    def test_nonessential_upset_keeps_function(self):
        fpga, bs = make_pair(rows=16, cols=16, bpc=64, essential_fraction=0.001)
        fpga.configure(bs)
        fpga.power_on()
        # flipping one bit is overwhelmingly likely non-essential; find one
        mask = fpga._essential_mask.reshape(-1)
        safe = int(np.nonzero(~mask)[0][0])
        fpga.upset_bits(np.array([safe]))
        assert fpga.is_functional()

    def test_upset_index_validation(self):
        fpga, bs = make_pair()
        fpga.configure(bs)
        with pytest.raises(FpgaError):
            fpga.upset_bits(np.array([fpga.num_config_bits]))

    def test_stats_counters(self):
        fpga, bs = make_pair()
        fpga.configure(bs)
        fpga.readback(0, 0)
        fpga.upset_bits(np.array([1, 2]))
        assert fpga.stats["global_loads"] == 1
        assert fpga.stats["readbacks"] == 1
        assert fpga.stats["upsets_injected"] == 2
