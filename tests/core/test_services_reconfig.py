"""Tests for the bitstream library, services and reconfiguration manager."""

import numpy as np
import pytest

from repro.core import (
    BitstreamLibrary,
    ReconfigurationManager,
    ReconfigurationService,
    ServiceError,
    ValidationService,
    default_registry,
)
from repro.core.equipment import ReconfigurableEquipment
from repro.fpga import Bitstream, Fpga
from repro.fpga.memory import OnboardMemory
from repro.sim import RngRegistry

GEOM = (8, 8, 32)


def setup_stack(essential_fraction=0.1):
    reg = default_registry()
    fpga = Fpga(
        rows=GEOM[0], cols=GEOM[1], bits_per_clb=GEOM[2],
        gate_capacity=1_200_000, essential_fraction=essential_fraction,
    )
    eq = ReconfigurableEquipment("demod0", fpga, reg, "modem")
    lib = BitstreamLibrary()
    for name in ("modem.cdma", "modem.tdma"):
        lib.store(reg.get(name).bitstream_for(*GEOM))
    return reg, eq, lib


class TestLibrary:
    def test_store_fetch_roundtrip(self):
        reg, eq, lib = setup_stack()
        bs = lib.fetch("modem.tdma")
        assert bs.function == "modem.tdma"

    def test_latest_version_fetched(self):
        reg, eq, lib = setup_stack()
        d = reg.get("modem.tdma")
        newer = Bitstream(
            "modem.tdma", *GEOM,
            frames=d.bitstream_for(*GEOM).frames, version=3,
        )
        lib.store(newer)
        assert lib.fetch("modem.tdma").version == 3
        assert lib.fetch("modem.tdma", version=1).version == 1

    def test_missing_design(self):
        _, _, lib = setup_stack()
        with pytest.raises(KeyError):
            lib.fetch("modem.ofdm")

    def test_evict(self):
        _, _, lib = setup_stack()
        lib.evict("modem.cdma", 1)
        with pytest.raises(KeyError):
            lib.fetch("modem.cdma")

    def test_catalogue(self):
        _, _, lib = setup_stack()
        assert ("modem.tdma", 1) in lib.catalogue()

    def test_corrupted_file_raises_on_fetch(self):
        """A double EDAC error must surface, not return garbage."""
        _, _, lib = setup_stack()
        name = "modem.tdma@1.bit"
        words = lib.memory._files[name].words
        words[10, 0] ^= 1
        words[10, 5] ^= 1  # double error in one byte: uncorrectable
        with pytest.raises(IOError):
            lib.fetch("modem.tdma")

    def test_memory_accounting(self):
        lib = BitstreamLibrary(OnboardMemory(capacity_bytes=100))
        with pytest.raises(MemoryError):
            lib.store_raw("big", 1, bytes(200))


class TestReconfigurationService:
    def test_executes_four_steps(self):
        reg, eq, lib = setup_stack()
        svc = ReconfigurationService(lib)
        bs, steps = svc.execute(eq, "modem.tdma")
        names = [s.step for s in steps]
        assert names == ["fetch-from-memory", "configure-fpga", "switch-on"]
        assert eq.operational
        assert eq.loaded_design == "modem.tdma"

    def test_unload_step_when_not_keeping(self):
        reg, eq, lib = setup_stack()
        svc = ReconfigurationService(lib, keep_in_library=False)
        _, steps = svc.execute(eq, "modem.tdma")
        assert steps[-1].step == "unload-from-memory"
        with pytest.raises(ServiceError):
            svc.execute(eq, "modem.tdma")  # evicted

    def test_durations_positive_and_rate_dependent(self):
        reg, eq, lib = setup_stack()
        slow = ReconfigurationService(lib, memory_read_rate=1e6)
        _, steps_slow = slow.execute(eq, "modem.tdma")
        fast = ReconfigurationService(lib, memory_read_rate=1e9)
        _, steps_fast = fast.execute(eq, "modem.cdma")
        assert steps_slow[0].duration > steps_fast[0].duration > 0

    def test_missing_file_is_service_error(self):
        reg, eq, lib = setup_stack()
        svc = ReconfigurationService(lib)
        with pytest.raises(ServiceError):
            svc.execute(eq, "modem.ofdm")


class TestValidationService:
    def test_pass_on_clean_load(self):
        reg, eq, lib = setup_stack()
        bs, _ = ReconfigurationService(lib).execute(eq, "modem.tdma")
        passed, steps = ValidationService().execute(eq, bs)
        assert passed
        assert "PASS" in steps[0].detail

    def test_fail_on_corruption(self):
        reg, eq, lib = setup_stack()
        bs, _ = ReconfigurationService(lib).execute(eq, "modem.tdma")
        eq.fpga.upset_bits(np.array([5]))
        passed, steps = ValidationService().execute(eq, bs)
        assert not passed
        assert "FAIL" in steps[0].detail

    def test_duration_scales_with_config_size(self):
        reg, eq, lib = setup_stack()
        bs, _ = ReconfigurationService(lib).execute(eq, "modem.tdma")
        svc = ValidationService(crc_check_rate=1e6)
        _, steps = svc.execute(eq, bs)
        assert np.isclose(steps[0].duration, eq.fpga.num_config_bits / 1e6)


class TestReconfigurationManager:
    def test_successful_sequence(self):
        reg, eq, lib = setup_stack()
        eq.load("modem.cdma")
        mgr = ReconfigurationManager(lib)
        report = mgr.execute(eq, "modem.tdma")
        assert report.success
        assert not report.rolled_back
        assert report.final_function == "modem.tdma"
        assert report.outage_seconds > 0
        assert report.crc_telemetry == lib.fetch("modem.tdma").crc32()

    def test_step_sequence_matches_paper(self):
        """§3.1: off -> load -> telemetry(CRC) -> on."""
        reg, eq, lib = setup_stack()
        eq.load("modem.cdma")
        mgr = ReconfigurationManager(lib)
        report = mgr.execute(eq, "modem.tdma")
        names = [s.step for s in report.steps]
        assert names == [
            "switch-off",
            "fetch-from-memory",
            "configure-fpga",
            "switch-on",
            "crc-auto-test",
        ]

    def test_rollback_on_corrupted_load(self):
        """'the system should be able to come back to the previous
        configuration in case of failure of the process'."""
        reg, eq, lib = setup_stack()
        eq.load("modem.cdma")
        mgr = ReconfigurationManager(lib)

        def corrupt(fpga):
            fpga.upset_bits(np.arange(10))

        report = mgr.execute(eq, "modem.tdma", corrupt_hook=corrupt)
        assert not report.success
        assert report.rolled_back
        assert report.final_function == "modem.cdma"
        assert eq.operational  # the old service is back

    def test_failure_without_previous_config(self):
        reg, eq, lib = setup_stack()
        mgr = ReconfigurationManager(lib)
        report = mgr.execute(eq, "modem.ofdm")  # unknown design
        assert not report.success
        assert not report.rolled_back
        assert report.final_function is None

    def test_history_recorded(self):
        reg, eq, lib = setup_stack()
        eq.load("modem.cdma")
        mgr = ReconfigurationManager(lib)
        mgr.execute(eq, "modem.tdma")
        mgr.execute(eq, "modem.cdma")
        assert len(mgr.history) == 2
        assert "OK" in mgr.history[0].summary()

    def test_outage_includes_config_and_validation(self):
        reg, eq, lib = setup_stack()
        eq.load("modem.cdma")
        mgr = ReconfigurationManager(lib)
        report = mgr.execute(eq, "modem.tdma")
        step_sum = sum(s.duration for s in report.steps)
        assert np.isclose(report.outage_seconds, step_sum)
