"""Tests for the on-board housekeeping processes (sim-time)."""

import numpy as np
import pytest

from repro.core import (
    HousekeepingLog,
    PayloadConfig,
    RadiationExposure,
    RegenerativePayload,
    ScrubProcess,
    ValidationProcess,
)
from repro.radiation import GEO, RadiationEnvironment
from repro.sim import RngRegistry, Simulator

SMALL = dict(fpga_rows=8, fpga_cols=8, fpga_bits_per_clb=32)
DAY = 86_400.0


def hot_env():
    return RadiationEnvironment(orbit=GEO, device_seu_factor=1e6)


def booted_payload():
    pl = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
    pl.boot()
    # housekeeping validation compares against the library image
    for name in ("modem.tdma", "decod.conv"):
        pl.obc.library.store(pl.registry.get(name).bitstream_for(8, 8, 32))
    return pl


class TestRadiationExposure:
    def test_injects_over_simulated_time(self):
        sim = Simulator()
        pl = booted_payload()
        log = HousekeepingLog()
        RadiationExposure(sim, pl.demods[0].fpga, hot_env(),
                          RngRegistry(1).stream("seu"), step=3600.0, log=log)
        sim.run(until=2 * DAY)
        assert log.upsets > 0
        assert pl.demods[0].fpga.corrupted_bits() > 0

    def test_step_validation(self):
        sim = Simulator()
        pl = booted_payload()
        with pytest.raises(ValueError):
            RadiationExposure(sim, pl.demods[0].fpga, hot_env(),
                              RngRegistry(1).stream("x"), step=0.0)


class TestScrubProcess:
    @pytest.mark.parametrize("mode", ["blind", "readback"])
    def test_keeps_configuration_clean(self, mode):
        sim = Simulator()
        pl = booted_payload()
        fpga = pl.demods[0].fpga
        log = HousekeepingLog()
        RadiationExposure(sim, fpga, hot_env(), RngRegistry(2).stream("seu"),
                          step=1800.0, log=log)
        ScrubProcess(sim, fpga, period=3600.0, mode=mode, log=log)
        sim.run(until=2 * DAY)
        assert log.upsets > 0
        assert log.scrubs >= 40
        # the last scheduled scrub may precede the last injection slightly;
        # corruption is bounded by one injection step's worth of upsets
        assert fpga.corrupted_bits() <= max(10, log.upsets // 10)

    def test_readback_counts_repairs(self):
        sim = Simulator()
        pl = booted_payload()
        fpga = pl.demods[0].fpga
        log = HousekeepingLog()
        RadiationExposure(sim, fpga, hot_env(), RngRegistry(3).stream("seu"),
                          step=1800.0, log=log)
        ScrubProcess(sim, fpga, period=3600.0, mode="readback", log=log)
        sim.run(until=DAY)
        assert log.repairs > 0

    def test_validation(self):
        sim = Simulator()
        pl = booted_payload()
        with pytest.raises(ValueError):
            ScrubProcess(sim, pl.demods[0].fpga, period=-1.0)
        with pytest.raises(ValueError):
            ScrubProcess(sim, pl.demods[0].fpga, period=10.0, mode="magic")


class TestValidationProcess:
    def test_periodic_telemetry(self):
        sim = Simulator()
        pl = booted_payload()
        log = HousekeepingLog()
        ValidationProcess(sim, pl.obc, period=6 * 3600.0, log=log)
        sim.run(until=DAY)
        assert log.validations == 4 * 2  # 4 cycles x 2 equipments
        assert log.validation_failures == 0
        assert log.availability == 1.0
        hk_tms = [tm for tm in pl.obc.tm_log if "housekeeping" in tm.payload]
        assert len(hk_tms) == 8

    def test_detects_corruption(self):
        sim = Simulator()
        pl = booted_payload()
        log = HousekeepingLog()
        ValidationProcess(sim, pl.obc, period=3600.0, log=log)
        pl.demods[0].fpga.upset_bits(np.array([1, 2, 3]))
        sim.run(until=7200.0)
        assert log.validation_failures > 0

    def test_notify_hook_feeds_fdir(self):
        """Each per-equipment verdict reaches the notify callable."""
        sim = Simulator()
        pl = booted_payload()
        seen = []
        ValidationProcess(
            sim, pl.obc, period=3600.0, notify=lambda name, ok: seen.append((name, ok))
        )
        pl.demods[0].fpga.upset_bits(np.array([1, 2, 3]))
        sim.run(until=3600.0)
        assert ("demod0", False) in seen
        assert (pl.decoder.name, True) in seen

    def test_notify_hook_errors_are_swallowed(self):
        sim = Simulator()
        pl = booted_payload()
        log = HousekeepingLog()

        def bomb(name, ok):
            raise RuntimeError("consumer bug")

        vp = ValidationProcess(sim, pl.obc, period=3600.0, log=log, notify=bomb)
        sim.run(until=DAY)
        assert vp.process.is_alive  # housekeeping survived the consumer
        assert log.validations > 0

    def test_availability_accounting(self):
        sim = Simulator()
        pl = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
        # every bit essential so any upset downs the function
        pl.demods[0].fpga.essential_fraction = 1.0
        pl.boot()
        for name in ("modem.tdma", "decod.conv"):
            pl.obc.library.store(pl.registry.get(name).bitstream_for(8, 8, 32))
        log = HousekeepingLog()
        RadiationExposure(sim, pl.demods[0].fpga, hot_env(),
                          RngRegistry(4).stream("seu"), step=1800.0, log=log)
        ValidationProcess(sim, pl.obc, period=3600.0, log=log)
        sim.run(until=2 * DAY)
        assert log.availability < 1.0

    def test_empty_log_availability(self):
        assert HousekeepingLog().availability == 1.0

    def test_period_validation(self):
        sim = Simulator()
        pl = booted_payload()
        with pytest.raises(ValueError):
            ValidationProcess(sim, pl.obc, period=0.0)


class TestCombinedHousekeeping:
    def test_scrubbed_payload_outlives_unscrubbed(self):
        """The steady-state §4.3 story, in simulated time."""
        results = {}
        for scrubbed in (False, True):
            sim = Simulator()
            pl = booted_payload()
            fpga = pl.demods[0].fpga
            log = HousekeepingLog()
            RadiationExposure(sim, fpga, hot_env(),
                              RngRegistry(5).stream(f"s{scrubbed}"),
                              step=1800.0, log=log)
            if scrubbed:
                ScrubProcess(sim, fpga, period=3600.0, mode="blind", log=log)
            ValidationProcess(sim, pl.obc, period=3600.0, log=log)
            sim.run(until=5 * DAY)
            results[scrubbed] = log
        assert results[True].availability > results[False].availability
        assert results[False].validation_failures > results[True].validation_failures
