"""Tests for cold-spare redundancy and automatic failover."""

import numpy as np
import pytest

from repro.core import default_registry
from repro.core.equipment import EquipmentError, ReconfigurableEquipment
from repro.core.redundancy import FailoverProcess, RedundantEquipment
from repro.fpga import Fpga
from repro.radiation import LatchUpModel
from repro.sim import RngRegistry, Simulator

GEOM = dict(rows=8, cols=8, bits_per_clb=32)


def make_pair(essential=1.0):
    reg = default_registry()
    primary = ReconfigurableEquipment(
        "demod0", Fpga(**GEOM, essential_fraction=essential, name="fpga-a"),
        reg, "modem",
    )
    spare = ReconfigurableEquipment(
        "demod0-spare", Fpga(**GEOM, essential_fraction=essential, name="fpga-b"),
        reg, "modem",
    )
    pair = RedundantEquipment(primary, spare)
    pair.load("modem.tdma")
    return pair


class TestRedundantEquipment:
    def test_spare_stays_cold(self):
        pair = make_pair()
        assert pair.primary.operational
        assert pair.spare.loaded_design is None
        assert pair.loaded_design == "modem.tdma"

    def test_failover_carries_personality(self):
        pair = make_pair()
        pair.primary.fpga.upset_bits(np.array([1]))  # essential upset
        assert not pair.operational
        pair.failover()
        assert pair.active is pair.spare
        assert pair.loaded_design == "modem.tdma"
        assert pair.operational
        assert pair.failovers == 1

    def test_failback_possible(self):
        pair = make_pair()
        pair.primary.fpga.upset_bits(np.array([1]))
        pair.failover()
        # the primary is recoverable (not marked failed): fail back
        pair.failover()
        assert pair.active is pair.primary
        assert pair.operational

    def test_both_units_failed_unrecoverable(self):
        pair = make_pair()
        pair.mark_unit_failed(pair.spare)
        pair.primary.fpga.upset_bits(np.array([1]))
        with pytest.raises(EquipmentError):
            pair.failover()

    def test_kind_mismatch_rejected(self):
        reg = default_registry()
        a = ReconfigurableEquipment("a", Fpga(**GEOM), reg, "modem")
        b = ReconfigurableEquipment("b", Fpga(**GEOM), reg, "decoder")
        with pytest.raises(ValueError):
            RedundantEquipment(a, b)

    def test_failover_without_design(self):
        reg = default_registry()
        a = ReconfigurableEquipment("a", Fpga(**GEOM), reg, "modem")
        b = ReconfigurableEquipment("b", Fpga(**GEOM), reg, "modem")
        pair = RedundantEquipment(a, b)
        with pytest.raises(EquipmentError):
            pair.failover()

    def test_behaviour_follows_active_unit(self):
        from repro.dsp.tdma import TdmaModem

        pair = make_pair()
        assert isinstance(pair.behaviour(), TdmaModem)
        pair.primary.fpga.upset_bits(np.array([1]))
        pair.failover()
        assert isinstance(pair.behaviour(), TdmaModem)


class TestFailoverProcess:
    def test_automatic_failover_on_seu(self):
        sim = Simulator()
        pair = make_pair()
        watch = FailoverProcess(sim, pair, check_period=60.0)

        def strike(sim):
            yield sim.timeout(300.0)
            pair.primary.fpga.upset_bits(np.array([2]))

        sim.process(strike(sim))
        sim.run(until=600.0)
        assert pair.active is pair.spare
        assert pair.operational
        assert len(watch.events) == 1
        # detected at the first health check at/after the strike
        assert watch.events[0][0] in (300.0, 360.0)

    def test_latchup_driven_failover(self):
        """Unprotected latch-up kills the primary; the pair survives."""
        sim = Simulator()
        pair = make_pair()
        lu = LatchUpModel(rate_per_device_day=50.0, protected=False)
        watch = FailoverProcess(sim, pair, check_period=3600.0)
        rng = RngRegistry(3).stream("lu")

        def exposure(sim):
            while not lu.destroyed:
                yield sim.timeout(3600.0)
                if lu.advance(3600.0 / 86_400.0, rng) and lu.destroyed:
                    pair.mark_unit_failed(pair.primary)

        sim.process(exposure(sim))
        sim.run(until=10 * 86_400.0)
        assert lu.destroyed
        assert pair.active is pair.spare
        assert pair.operational

    def test_unrecoverable_logged_and_stopped(self):
        sim = Simulator()
        pair = make_pair()
        pair.mark_unit_failed(pair.spare)
        watch = FailoverProcess(sim, pair, check_period=60.0)
        pair.primary.fpga.upset_bits(np.array([1]))
        sim.run(until=600.0)
        assert any("unrecoverable" in e[1] for e in watch.events)
        assert not watch.process.is_alive

    def test_period_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FailoverProcess(sim, make_pair(), check_period=0.0)
