"""Tests for cold-spare redundancy and automatic failover."""

import numpy as np
import pytest

from repro.core import default_registry
from repro.core.equipment import EquipmentError, ReconfigurableEquipment
from repro.core.redundancy import FailoverProcess, RedundantEquipment
from repro.fpga import Fpga
from repro.radiation import LatchUpModel
from repro.sim import RngRegistry, Simulator

GEOM = dict(rows=8, cols=8, bits_per_clb=32)


def make_pair(essential=1.0):
    reg = default_registry()
    primary = ReconfigurableEquipment(
        "demod0", Fpga(**GEOM, essential_fraction=essential, name="fpga-a"),
        reg, "modem",
    )
    spare = ReconfigurableEquipment(
        "demod0-spare", Fpga(**GEOM, essential_fraction=essential, name="fpga-b"),
        reg, "modem",
    )
    pair = RedundantEquipment(primary, spare)
    pair.load("modem.tdma")
    return pair


class TestRedundantEquipment:
    def test_spare_stays_cold(self):
        pair = make_pair()
        assert pair.primary.operational
        assert pair.spare.loaded_design is None
        assert pair.loaded_design == "modem.tdma"

    def test_failover_carries_personality(self):
        pair = make_pair()
        pair.primary.fpga.upset_bits(np.array([1]))  # essential upset
        assert not pair.operational
        pair.failover()
        assert pair.active is pair.spare
        assert pair.loaded_design == "modem.tdma"
        assert pair.operational
        assert pair.failovers == 1

    def test_failback_possible(self):
        pair = make_pair()
        pair.primary.fpga.upset_bits(np.array([1]))
        pair.failover()
        # the primary is recoverable (not marked failed): fail back
        pair.failover()
        assert pair.active is pair.primary
        assert pair.operational

    def test_both_units_failed_unrecoverable(self):
        pair = make_pair()
        pair.mark_unit_failed(pair.spare)
        pair.primary.fpga.upset_bits(np.array([1]))
        with pytest.raises(EquipmentError):
            pair.failover()

    def test_kind_mismatch_rejected(self):
        reg = default_registry()
        a = ReconfigurableEquipment("a", Fpga(**GEOM), reg, "modem")
        b = ReconfigurableEquipment("b", Fpga(**GEOM), reg, "decoder")
        with pytest.raises(ValueError):
            RedundantEquipment(a, b)

    def test_failover_without_design(self):
        reg = default_registry()
        a = ReconfigurableEquipment("a", Fpga(**GEOM), reg, "modem")
        b = ReconfigurableEquipment("b", Fpga(**GEOM), reg, "modem")
        pair = RedundantEquipment(a, b)
        with pytest.raises(EquipmentError):
            pair.failover()

    def test_behaviour_follows_active_unit(self):
        from repro.dsp.tdma import TdmaModem

        pair = make_pair()
        assert isinstance(pair.behaviour(), TdmaModem)
        pair.primary.fpga.upset_bits(np.array([1]))
        pair.failover()
        assert isinstance(pair.behaviour(), TdmaModem)


class TestFailoverProcess:
    def test_automatic_failover_on_seu(self):
        sim = Simulator()
        pair = make_pair()
        watch = FailoverProcess(sim, pair, check_period=60.0)

        def strike(sim):
            yield sim.timeout(300.0)
            pair.primary.fpga.upset_bits(np.array([2]))

        sim.process(strike(sim))
        sim.run(until=600.0)
        assert pair.active is pair.spare
        assert pair.operational
        assert len(watch.events) == 1
        # detected at the first health check at/after the strike
        assert watch.events[0][0] in (300.0, 360.0)

    def test_latchup_driven_failover(self):
        """Unprotected latch-up kills the primary; the pair survives."""
        sim = Simulator()
        pair = make_pair()
        lu = LatchUpModel(rate_per_device_day=50.0, protected=False)
        watch = FailoverProcess(sim, pair, check_period=3600.0)
        rng = RngRegistry(3).stream("lu")

        def exposure(sim):
            while not lu.destroyed:
                yield sim.timeout(3600.0)
                if lu.advance(3600.0 / 86_400.0, rng) and lu.destroyed:
                    pair.mark_unit_failed(pair.primary)

        sim.process(exposure(sim))
        sim.run(until=10 * 86_400.0)
        assert lu.destroyed
        assert pair.active is pair.spare
        assert pair.operational

    def test_unrecoverable_logged_and_stopped(self):
        sim = Simulator()
        pair = make_pair()
        pair.mark_unit_failed(pair.spare)
        watch = FailoverProcess(sim, pair, check_period=60.0)
        pair.primary.fpga.upset_bits(np.array([1]))
        sim.run(until=600.0)
        assert any("unrecoverable" in e[1] for e in watch.events)
        assert not watch.process.is_alive

    def test_period_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FailoverProcess(sim, make_pair(), check_period=0.0)

    def test_reentry_after_completed_failover(self):
        """The process keeps watching: a second transient fault on the
        spare fails back to the (rewritten, healthy) primary."""
        sim = Simulator()
        pair = make_pair()
        watch = FailoverProcess(sim, pair, check_period=60.0)

        def strikes(sim):
            yield sim.timeout(100.0)
            pair.primary.fpga.upset_bits(np.array([1]))
            yield sim.timeout(300.0)
            pair.spare.fpga.upset_bits(np.array([1]))

        sim.process(strikes(sim))
        sim.run(until=1000.0)
        assert pair.failovers == 2
        assert pair.active is pair.primary
        assert pair.operational  # failback rewrote the corrupted config
        assert watch.process.is_alive  # still on duty
        assert len(watch.events) == 2


class _WatchdogStub:
    """Records the suspend/resume/latch protocol calls."""

    def __init__(self):
        self.calls = []

    def suspend(self, name):
        self.calls.append(("suspend", name))

    def resume(self, name):
        self.calls.append(("resume", name))

    def latch(self, name, reason="", load_golden=True):
        self.calls.append(("latch", name, load_golden))
        return {"reason": reason}


class TestTerminalDoubleFault:
    def test_terminal_flag_and_behaviour_error(self):
        pair = make_pair()
        pair.mark_unit_failed(pair.spare)
        pair.mark_unit_failed(pair.primary)
        with pytest.raises(EquipmentError):
            pair.failover()
        assert pair.terminal
        assert not pair.operational
        with pytest.raises(EquipmentError):
            pair.behaviour()  # never silently delegates to a dead unit

    def test_healthy_active_dead_spare_is_not_terminal(self):
        """A commanded failover onto a dead spare is refused, but the
        healthy active unit keeps the pair alive."""
        pair = make_pair()
        pair.mark_unit_failed(pair.spare)
        with pytest.raises(EquipmentError):
            pair.failover()
        assert not pair.terminal
        assert pair.operational
        pair.behaviour()  # still serves

    def test_record_design_carries_over_externally_loaded_personality(self):
        pair = make_pair()
        # an external service loaded a new personality on the unit itself
        pair.active.load("modem.tdma8")
        pair.record_design("modem.tdma8")
        pair.mark_unit_failed(pair.primary)
        pair.failover()
        assert pair.loaded_design == "modem.tdma8"


class TestFailoverWatchdogWiring:
    def test_suspends_on_construction(self):
        sim = Simulator()
        pair = make_pair()
        wd = _WatchdogStub()
        FailoverProcess(sim, pair, check_period=60.0, watchdog=wd)
        assert wd.calls == [("suspend", "demod0")]

    def test_unrecoverable_resumes_and_latches_terminal(self):
        sim = Simulator()
        pair = make_pair()
        wd = _WatchdogStub()
        FailoverProcess(sim, pair, check_period=60.0, watchdog=wd)
        pair.mark_unit_failed(pair.spare)
        pair.primary.fpga.upset_bits(np.array([1]))
        pair.mark_unit_failed(pair.primary)
        sim.run(until=600.0)
        assert ("resume", "demod0") in wd.calls
        # dead hardware: the latch must not try to boot a golden image
        assert ("latch", "demod0", False) in wd.calls

    def test_successful_failover_keeps_watchdog_suspended(self):
        sim = Simulator()
        pair = make_pair()
        wd = _WatchdogStub()
        FailoverProcess(sim, pair, check_period=60.0, watchdog=wd)
        pair.primary.fpga.upset_bits(np.array([1]))
        sim.run(until=600.0)
        assert pair.active is pair.spare
        assert all(c[0] == "suspend" for c in wd.calls)
