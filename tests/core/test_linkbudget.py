"""Tests for the transparent-vs-regenerative link-budget model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linkbudget import (
    cn_for_ber,
    compare_payloads,
    regenerative_ber,
    regenerative_margin_db,
    shared_uplink_cn,
    transparent_ber,
    transparent_cn,
)
from repro.dsp.modem import theoretical_ber_bpsk


class TestTransparentCn:
    def test_symmetric_combination_loses_3db(self):
        """Equal hops: the bent pipe loses exactly 3 dB."""
        assert np.isclose(transparent_cn(10.0, 10.0), 10.0 - 10 * np.log10(2))

    def test_dominated_by_weaker_hop(self):
        cn = transparent_cn(3.0, 30.0)
        assert cn < 3.0
        assert cn > 3.0 - 0.1  # strong downlink costs almost nothing

    def test_always_below_both_hops(self):
        for up, down in ((5, 8), (10, 10), (20, 6)):
            cn = transparent_cn(up, down)
            assert cn < up and cn < down


class TestRegenerativeBer:
    def test_error_addition_formula(self):
        pu = theoretical_ber_bpsk(6.0)
        pd = theoretical_ber_bpsk(9.0)
        assert np.isclose(regenerative_ber(6.0, 9.0), pu + pd - 2 * pu * pd)

    def test_perfect_downlink_leaves_uplink_ber(self):
        assert np.isclose(
            regenerative_ber(6.0, 60.0), theoretical_ber_bpsk(6.0), rtol=1e-6
        )


class TestPaperClaim:
    def test_regeneration_always_at_least_as_good(self):
        """The §2.1 claim over the whole plausible operating region."""
        for up in np.arange(2.0, 14.0, 1.0):
            for down in np.arange(2.0, 14.0, 1.0):
                c = compare_payloads(float(up), float(down))
                assert c.regenerative_ber <= c.transparent_ber * 1.0000001

    def test_gain_grows_with_link_quality(self):
        gains = [
            compare_payloads(cn, cn).regeneration_gain for cn in (4.0, 8.0, 12.0)
        ]
        assert gains[0] < gains[1] < gains[2]

    def test_small_terminal_case(self):
        """Weak uplink (small terminal), strong downlink: the case the
        paper highlights."""
        c = compare_payloads(5.0, 15.0)
        # transparent pays the combining penalty on its C/N
        assert c.transparent_cn_db < 5.0
        # regenerative only inherits the uplink BER
        assert np.isclose(
            c.regenerative_ber, theoretical_ber_bpsk(5.0), rtol=1e-2
        )
        assert c.regeneration_gain > 1.2

    @given(
        st.floats(min_value=2.0, max_value=15.0),
        st.floats(min_value=2.0, max_value=15.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_claim_property(self, up, down):
        c = compare_payloads(up, down)
        assert c.regenerative_ber <= c.transparent_ber * 1.0000001
        assert 0.0 <= c.regenerative_ber <= 0.5


class TestCnForBer:
    def test_inverts_theoretical_ber(self):
        for cn in (4.0, 8.0, 12.0):
            ber = theoretical_ber_bpsk(cn)
            assert np.isclose(cn_for_ber(ber), cn, atol=1e-9)

    def test_monotone_decreasing_in_ber(self):
        assert cn_for_ber(1e-6) > cn_for_ber(1e-4) > cn_for_ber(1e-2)

    def test_domain_edges_rejected(self):
        for bad in (0.0, 0.5, 1.0, -1e-3):
            with pytest.raises(ValueError):
                cn_for_ber(bad)

    @given(st.floats(min_value=1e-9, max_value=0.4))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, ber):
        assert np.isclose(theoretical_ber_bpsk(cn_for_ber(ber)), ber, rtol=1e-6)


class TestRegenerativeMargin:
    def test_margin_tracks_uplink_db_for_db(self):
        """Above threshold, one extra uplink dB is one extra margin dB."""
        m9 = regenerative_margin_db(9.0, 16.0, 1e-4)
        m10 = regenerative_margin_db(10.0, 16.0, 1e-4)
        assert np.isclose(m10 - m9, 1.0)

    def test_sign_matches_ber_target(self):
        for up in (6.0, 8.0, 10.0, 12.0):
            margin = regenerative_margin_db(up, 16.0, 1e-4)
            meets = regenerative_ber(up, 16.0) <= 1e-4
            assert (margin >= 0.0) == meets

    def test_zero_margin_is_the_threshold(self):
        m = regenerative_margin_db(10.0, 16.0, 1e-4)
        at_threshold = 10.0 - m
        assert np.isclose(
            regenerative_ber(at_threshold, 16.0), 1e-4, rtol=1e-6
        )

    def test_hopeless_downlink_gives_negative_infinity(self):
        """Downlink alone violates the target: no uplink margin exists."""
        assert regenerative_margin_db(20.0, 0.0, 1e-4) == float("-inf")

    def test_target_validation(self):
        with pytest.raises(ValueError):
            regenerative_margin_db(10.0, 16.0, 0.0)
        with pytest.raises(ValueError):
            regenerative_margin_db(10.0, 16.0, 0.5)


class TestSharedUplinkCn:
    def test_all_active_clear_sky_is_base(self):
        assert np.isclose(shared_uplink_cn(12.0, 0.0, 3, 3), 12.0)

    def test_shedding_concentrates_power(self):
        assert np.isclose(
            shared_uplink_cn(12.0, 0.0, 3, 1), 12.0 + 10 * np.log10(3.0)
        )
        assert np.isclose(
            shared_uplink_cn(12.0, 0.0, 3, 2), 12.0 + 10 * np.log10(1.5)
        )

    def test_fade_subtracts(self):
        assert np.isclose(shared_uplink_cn(12.0, 5.0, 3, 3), 7.0)

    def test_concentration_can_offset_fade(self):
        """Shedding down to one carrier buys back a 4 dB fade and more."""
        faded_full = shared_uplink_cn(12.0, 4.0, 3, 3)
        faded_shed = shared_uplink_cn(12.0, 4.0, 3, 1)
        assert faded_full < 12.0 < faded_shed
        assert faded_shed - faded_full == pytest.approx(10 * np.log10(3.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            shared_uplink_cn(12.0, 0.0, 0, 1)
        with pytest.raises(ValueError):
            shared_uplink_cn(12.0, 0.0, 3, 0)
        with pytest.raises(ValueError):
            shared_uplink_cn(12.0, 0.0, 3, 4)
        with pytest.raises(ValueError):
            shared_uplink_cn(12.0, -1.0, 3, 3)
