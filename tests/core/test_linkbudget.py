"""Tests for the transparent-vs-regenerative link-budget model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linkbudget import (
    compare_payloads,
    regenerative_ber,
    transparent_ber,
    transparent_cn,
)
from repro.dsp.modem import theoretical_ber_bpsk


class TestTransparentCn:
    def test_symmetric_combination_loses_3db(self):
        """Equal hops: the bent pipe loses exactly 3 dB."""
        assert np.isclose(transparent_cn(10.0, 10.0), 10.0 - 10 * np.log10(2))

    def test_dominated_by_weaker_hop(self):
        cn = transparent_cn(3.0, 30.0)
        assert cn < 3.0
        assert cn > 3.0 - 0.1  # strong downlink costs almost nothing

    def test_always_below_both_hops(self):
        for up, down in ((5, 8), (10, 10), (20, 6)):
            cn = transparent_cn(up, down)
            assert cn < up and cn < down


class TestRegenerativeBer:
    def test_error_addition_formula(self):
        pu = theoretical_ber_bpsk(6.0)
        pd = theoretical_ber_bpsk(9.0)
        assert np.isclose(regenerative_ber(6.0, 9.0), pu + pd - 2 * pu * pd)

    def test_perfect_downlink_leaves_uplink_ber(self):
        assert np.isclose(
            regenerative_ber(6.0, 60.0), theoretical_ber_bpsk(6.0), rtol=1e-6
        )


class TestPaperClaim:
    def test_regeneration_always_at_least_as_good(self):
        """The §2.1 claim over the whole plausible operating region."""
        for up in np.arange(2.0, 14.0, 1.0):
            for down in np.arange(2.0, 14.0, 1.0):
                c = compare_payloads(float(up), float(down))
                assert c.regenerative_ber <= c.transparent_ber * 1.0000001

    def test_gain_grows_with_link_quality(self):
        gains = [
            compare_payloads(cn, cn).regeneration_gain for cn in (4.0, 8.0, 12.0)
        ]
        assert gains[0] < gains[1] < gains[2]

    def test_small_terminal_case(self):
        """Weak uplink (small terminal), strong downlink: the case the
        paper highlights."""
        c = compare_payloads(5.0, 15.0)
        # transparent pays the combining penalty on its C/N
        assert c.transparent_cn_db < 5.0
        # regenerative only inherits the uplink BER
        assert np.isclose(
            c.regenerative_ber, theoretical_ber_bpsk(5.0), rtol=1e-2
        )
        assert c.regeneration_gain > 1.2

    @given(
        st.floats(min_value=2.0, max_value=15.0),
        st.floats(min_value=2.0, max_value=15.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_claim_property(self, up, down):
        c = compare_payloads(up, down)
        assert c.regenerative_ber <= c.transparent_ber * 1.0000001
        assert 0.0 <= c.regenerative_ber <= 0.5
