"""Tests for the function registry and reconfigurable equipment."""

import numpy as np
import pytest

from repro.core import FunctionDesign, FunctionRegistry, default_registry
from repro.core.equipment import EquipmentError, ReconfigurableEquipment
from repro.dsp.cdma import CdmaModem
from repro.dsp.tdma import TdmaModem
from repro.fpga import Fpga


def small_fpga(**kw):
    kw.setdefault("rows", 8)
    kw.setdefault("cols", 8)
    kw.setdefault("bits_per_clb", 32)
    kw.setdefault("gate_capacity", 1_200_000)
    return Fpga(**kw)


class TestRegistry:
    def test_default_personalities(self):
        reg = default_registry()
        assert set(reg.names()) == {
            "modem.cdma",
            "modem.tdma",
            "modem.tdma8",
            "decod.none",
            "decod.conv",
            "decod.turbo",
        }

    def test_kinds(self):
        reg = default_registry()
        assert {d.name for d in reg.by_kind("modem")} == {
            "modem.cdma", "modem.tdma", "modem.tdma8",
        }
        assert len(reg.by_kind("decoder")) == 3

    def test_8psk_personality_higher_rate(self):
        """The upgrade personality carries 1.5x the bits per burst."""
        reg = default_registry()
        qpsk = reg.get("modem.tdma").factory()
        psk8 = reg.get("modem.tdma8").factory()
        assert psk8.bits_per_burst == qpsk.bits_per_burst * 3 // 2
        # and it still fits the MH1RT-class device
        assert reg.get("modem.tdma8").fits(1_200_000)

    def test_8psk_loopback(self):
        reg = default_registry()
        modem = reg.get("modem.tdma8").factory()
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, modem.bits_per_burst).astype(np.uint8)
        out = modem.receive(modem.transmit(bits))
        np.testing.assert_array_equal(out["bits"], bits)

    def test_factories_build_correct_types(self):
        reg = default_registry()
        assert isinstance(reg.get("modem.cdma").factory(), CdmaModem)
        assert isinstance(reg.get("modem.tdma").factory(), TdmaModem)

    def test_gate_budgets_fit_mh1rt(self):
        """The paper's point: both modem personalities fit 1.2M gates."""
        reg = default_registry()
        for name in ("modem.cdma", "modem.tdma"):
            assert reg.get(name).fits(1_200_000)

    def test_bitstream_deterministic(self):
        reg = default_registry()
        d = reg.get("modem.tdma")
        b1 = d.bitstream_for(8, 8, 32)
        b2 = d.bitstream_for(8, 8, 32)
        assert b1.crc32() == b2.crc32()
        np.testing.assert_array_equal(b1.frames, b2.frames)

    def test_bitstreams_differ_by_design(self):
        reg = default_registry()
        a = reg.get("modem.tdma").bitstream_for(8, 8, 32)
        b = reg.get("modem.cdma").bitstream_for(8, 8, 32)
        assert a.crc32() != b.crc32()

    def test_duplicate_name_rejected(self):
        reg = FunctionRegistry()
        d = FunctionDesign("x", "modem", 100.0, factory=lambda: None)
        reg.add(d)
        with pytest.raises(ValueError):
            reg.add(d)

    def test_unknown_design(self):
        with pytest.raises(KeyError):
            default_registry().get("modem.ofdm")

    def test_contains_len(self):
        reg = default_registry()
        assert "modem.tdma" in reg
        assert len(reg) == 6


class TestEquipment:
    def test_load_and_behaviour(self):
        reg = default_registry()
        eq = ReconfigurableEquipment("demod0", small_fpga(), reg, "modem")
        eq.load("modem.tdma")
        assert eq.operational
        assert isinstance(eq.behaviour(), TdmaModem)
        assert eq.fpga.loaded_function == "modem.tdma"

    def test_kind_mismatch_rejected(self):
        reg = default_registry()
        eq = ReconfigurableEquipment("demod0", small_fpga(), reg, "modem")
        with pytest.raises(EquipmentError):
            eq.load("decod.turbo")

    def test_gate_capacity_enforced(self):
        """A design must fit the device ('sufficient hardware capacity
        on the chip whatever the function', §4.4)."""
        reg = default_registry()
        tiny = small_fpga(gate_capacity=10_000)
        eq = ReconfigurableEquipment("demod0", tiny, reg, "modem")
        with pytest.raises(EquipmentError):
            eq.load("modem.cdma")

    def test_wrong_bitstream_function_rejected(self):
        reg = default_registry()
        eq = ReconfigurableEquipment("demod0", small_fpga(), reg, "modem")
        wrong = reg.get("modem.cdma").bitstream_for(8, 8, 32)
        with pytest.raises(EquipmentError):
            eq.load("modem.tdma", wrong)

    def test_unload_stops_service(self):
        reg = default_registry()
        eq = ReconfigurableEquipment("demod0", small_fpga(), reg, "modem")
        eq.load("modem.tdma")
        eq.unload()
        assert not eq.operational
        with pytest.raises(EquipmentError):
            eq.behaviour()

    def test_essential_seu_breaks_behaviour_access(self):
        reg = default_registry()
        fpga = small_fpga(essential_fraction=1.0)
        eq = ReconfigurableEquipment("demod0", fpga, reg, "modem")
        eq.load("modem.tdma")
        fpga.upset_bits(np.array([3]))
        assert not eq.operational
        with pytest.raises(EquipmentError):
            eq.behaviour()

    def test_repair_then_behaviour_restored(self):
        reg = default_registry()
        fpga = small_fpga(essential_fraction=1.0)
        eq = ReconfigurableEquipment("demod0", fpga, reg, "modem")
        eq.load("modem.tdma")
        fpga.upset_bits(np.array([3]))
        fpga.rewrite_all_from_golden()
        assert eq.operational

    def test_reload_swaps_personality(self):
        """The Fig. 3 swap at equipment level."""
        reg = default_registry()
        eq = ReconfigurableEquipment("demod0", small_fpga(), reg, "modem")
        eq.load("modem.cdma")
        assert isinstance(eq.behaviour(), CdmaModem)
        eq.load("modem.tdma")
        assert isinstance(eq.behaviour(), TdmaModem)

    def test_behaviour_without_load(self):
        reg = default_registry()
        eq = ReconfigurableEquipment("demod0", small_fpga(), reg, "modem")
        with pytest.raises(EquipmentError):
            eq.behaviour()
        with pytest.raises(EquipmentError):
            eq.refresh_behaviour()
