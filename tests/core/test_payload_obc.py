"""Tests for the regenerative payload (Fig. 2) and the OBC (Fig. 1)."""

import numpy as np
import pytest

from repro.core import (
    OnBoardController,
    PayloadConfig,
    Platform,
    RegenerativePayload,
    Telecommand,
)
from repro.core.payload import PacketSwitch
from repro.sim import RngRegistry

SMALL = dict(fpga_rows=8, fpga_cols=8, fpga_bits_per_clb=32)


def booted_payload(num_carriers=2, **kw):
    pl = RegenerativePayload(PayloadConfig(num_carriers=num_carriers, **SMALL, **kw))
    pl.boot()
    return pl


class TestPacketSwitch:
    def test_routes_by_first_byte(self):
        sw = PacketSwitch(num_ports=4)
        assert sw.route(b"\x02payload") == 2
        assert sw.drain(2) == [b"payload"]

    def test_unknown_port_dropped(self):
        sw = PacketSwitch(num_ports=2)
        assert sw.route(b"\x07data") is None
        assert sw.dropped == 1

    def test_empty_packet_dropped(self):
        sw = PacketSwitch()
        assert sw.route(b"") is None

    def test_counters(self):
        sw = PacketSwitch(num_ports=2)
        sw.route(b"\x00a")
        sw.route(b"\x01b")
        sw.route(b"\x09c")
        assert sw.routed == 2 and sw.dropped == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketSwitch(0)


class TestPayloadChain:
    def test_boot_makes_operational(self):
        pl = booted_payload()
        assert pl.operational
        assert all(eq.loaded_design == "modem.tdma" for eq in pl.demods)
        assert pl.decoder.loaded_design == "decod.conv"

    def test_uplink_roundtrip_all_carriers(self):
        """Fig. 2 end-to-end: 2-carrier multiplex -> per-carrier bits."""
        reg = RngRegistry(1)
        pl = booted_payload(num_carriers=2)
        bits = [
            reg.stream(f"c{k}").integers(
                0, 2, pl.demods[k].behaviour().bits_per_burst
            ).astype(np.uint8)
            for k in range(2)
        ]
        out = pl.process_uplink(pl.build_uplink(bits))
        for k in range(2):
            assert np.mean(out["bits"][k] != bits[k]) < 1e-3, f"carrier {k}"

    def test_six_carrier_paper_configuration(self):
        """The paper's 6-carrier MF-TDMA sizing."""
        reg = RngRegistry(2)
        pl = booted_payload(num_carriers=6)
        bits = [
            reg.stream(f"c{k}").integers(
                0, 2, pl.demods[k].behaviour().bits_per_burst
            ).astype(np.uint8)
            for k in range(6)
        ]
        out = pl.process_uplink(pl.build_uplink(bits))
        total_err = sum(
            np.count_nonzero(out["bits"][k] != bits[k]) for k in range(6)
        )
        assert total_err == 0

    def test_decoder_personality_used(self):
        pl = booted_payload()
        chain = pl.decoder.behaviour()
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, chain.transport_block).astype(np.uint8)
        llr = (1.0 - 2.0 * chain.encode(data)) * 4.0
        out = pl.decode_block(llr)
        np.testing.assert_array_equal(out["bits"], data)
        assert out["crc_ok"]

    def test_single_carrier_no_channelizer(self):
        reg = RngRegistry(3)
        pl = booted_payload(num_carriers=1)
        bits = [
            reg.stream("c0").integers(
                0, 2, pl.demods[0].behaviour().bits_per_burst
            ).astype(np.uint8)
        ]
        out = pl.process_uplink(pl.build_uplink(bits))
        assert np.mean(out["bits"][0] != bits[0]) == 0

    def test_carrier_count_validation(self):
        with pytest.raises(ValueError):
            PayloadConfig(num_carriers=0)

    def test_wrong_bits_list_length(self):
        pl = booted_payload(num_carriers=2)
        with pytest.raises(ValueError):
            pl.build_uplink([np.zeros(8, dtype=np.uint8)])

    def test_route_packets(self):
        pl = booted_payload()
        out = pl.route_packets([b"\x00aa", b"\x01bb", b"\xffzz"])
        assert out["routed"] == 2
        assert out["dropped"] == 1


class TestReturnLinkFrontDoor:
    """process_return_link: the payload's multi-user CDMA entry point."""

    def _cdma_payload(self):
        pl = booted_payload(num_carriers=1)
        pl.demods[0].load("modem.cdma")
        return pl

    def _composite(self, pl, num_users, num_bits, seed=31):
        from repro.dsp.cdma import CdmaReturnBank

        reg = RngRegistry(seed)
        base = pl.demods[0].behaviour().config
        bank = CdmaReturnBank.for_users(num_users, base)
        sent = [
            reg.stream(f"u{u}").integers(0, 2, num_bits).astype(np.uint8)
            for u in range(num_users)
        ]
        comp = bank.transmit(sent)
        noise = reg.stream("n")
        comp = comp + 0.03 * (
            noise.standard_normal(len(comp))
            + 1j * noise.standard_normal(len(comp))
        )
        return bank, sent, comp

    def test_demodulates_every_user(self):
        pl = self._cdma_payload()
        bank, sent, comp = self._composite(pl, num_users=2, num_bits=64)
        out = pl.process_return_link(comp, num_users=2, num_bits=64)
        assert len(out["bits"]) == 2 and len(out["diagnostics"]) == 2
        for u in range(2):
            np.testing.assert_array_equal(out["bits"][u], sent[u])
            # identical to the scalar per-user path on the same samples
            scalar = bank.modems[u].receive(comp, 64)
            np.testing.assert_array_equal(out["bits"][u], scalar["bits"])
            diag = out["diagnostics"][u]
            assert diag["phase"] == scalar["phase"]
            assert diag["acq_metric"] == scalar["acq_metric"]
            assert "bits" not in diag

    def test_health_bank_sees_per_user_diagnostics(self):
        class Sink:
            def __init__(self):
                self.seen = []

            def observe_burst(self, k, diag):
                self.seen.append((k, diag))

        pl = self._cdma_payload()
        _, _, comp = self._composite(pl, num_users=2, num_bits=32)
        sink = Sink()
        pl.attach_health(sink)
        out = pl.process_return_link(comp, num_users=2, num_bits=32)
        assert [k for k, _ in sink.seen] == [0, 1]
        for (u, diag), ref in zip(sink.seen, out["diagnostics"]):
            assert diag is ref
            assert "carrier_lock" in diag and "acq_metric" in diag

    def test_tdma_personality_rejected(self):
        pl = booted_payload(num_carriers=1)  # boots modem.tdma
        with pytest.raises(TypeError, match="CDMA personality"):
            pl.process_return_link(np.zeros(4096, dtype=complex), num_users=2)

    def test_equipment_fault_contained(self):
        pl = self._cdma_payload()
        _, _, comp = self._composite(pl, num_users=2, num_bits=32)
        pl.demods[0].fpga.power_off()
        out = pl.process_return_link(comp, num_users=2, num_bits=32)
        for u in range(2):
            assert not out["bits"][u].any()
            assert "equipment_failed" in out["diagnostics"][u]

    def test_carrier_out_of_range(self):
        pl = self._cdma_payload()
        with pytest.raises(ValueError):
            pl.process_return_link(np.zeros(64), num_users=1, carrier=5)


class TestObcAndPlatform:
    def test_status_telecommand(self):
        pl = booted_payload()
        platform = Platform(pl)
        tm = platform.handle_telecommand(Telecommand(1, "status"))
        assert tm.success
        assert tm.payload["demod0"]["design"] == "modem.tdma"
        assert platform.tc_count == 1 and platform.tm_count == 1

    def test_reconfigure_telecommand(self):
        pl = booted_payload()
        # library must hold the image first (the NCC normally uploads it)
        bs = pl.registry.get("modem.cdma").bitstream_for(8, 8, 32)
        pl.obc.library.store(bs)
        tm = pl.obc.execute(
            Telecommand(
                2, "reconfigure", {"equipment": "demod0", "function": "modem.cdma"}
            )
        )
        assert tm.success
        assert pl.demods[0].loaded_design == "modem.cdma"
        assert tm.payload["crc"] == bs.crc32()

    def test_validate_telecommand(self):
        pl = booted_payload()
        bs = pl.registry.get("modem.cdma").bitstream_for(8, 8, 32)
        pl.obc.library.store(bs)
        pl.obc.execute(
            Telecommand(3, "reconfigure", {"equipment": "demod0", "function": "modem.cdma"})
        )
        tm = pl.obc.execute(Telecommand(4, "validate", {"equipment": "demod0"}))
        assert tm.success

    def test_validate_detects_corruption(self):
        pl = booted_payload()
        bs = pl.registry.get("modem.cdma").bitstream_for(8, 8, 32)
        pl.obc.library.store(bs)
        pl.obc.execute(
            Telecommand(5, "reconfigure", {"equipment": "demod0", "function": "modem.cdma"})
        )
        pl.demods[0].fpga.upset_bits(np.array([1, 2, 3]))
        tm = pl.obc.execute(Telecommand(6, "validate", {"equipment": "demod0"}))
        assert not tm.success

    def test_unknown_action_reports_error(self):
        pl = booted_payload()
        tm = pl.obc.execute(Telecommand(7, "self-destruct"))
        assert not tm.success
        assert "unknown action" in tm.payload["error"]

    def test_unknown_equipment_reports_error(self):
        pl = booted_payload()
        tm = pl.obc.execute(
            Telecommand(8, "reconfigure", {"equipment": "nope", "function": "modem.tdma"})
        )
        assert not tm.success

    def test_store_and_evict(self):
        pl = booted_payload()
        bs = pl.registry.get("modem.cdma").bitstream_for(8, 8, 32)
        tm = pl.obc.execute(
            Telecommand(
                9, "store", {"function": "modem.cdma", "version": 1, "data": bs.to_bytes()}
            )
        )
        assert tm.success
        assert ("modem.cdma", 1) in pl.obc.library.catalogue()
        tm = pl.obc.execute(
            Telecommand(10, "evict", {"function": "modem.cdma", "version": 1})
        )
        assert tm.success
        assert ("modem.cdma", 1) not in pl.obc.library.catalogue()

    def test_duplicate_equipment_rejected(self):
        pl = booted_payload()
        with pytest.raises(ValueError):
            pl.obc.register_equipment(pl.demods[0])

    def test_tm_log_accumulates(self):
        pl = booted_payload()
        pl.obc.execute(Telecommand(1, "status"))
        pl.obc.execute(Telecommand(2, "status"))
        assert len(pl.obc.tm_log) == 2
