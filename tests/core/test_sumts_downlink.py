"""Tests for the S-UMTS sizing module and the payload Tx chain."""

import numpy as np
import pytest

from repro.core import PayloadConfig, RegenerativePayload
from repro.core.sumts import (
    CHIP_RATE_HZ,
    cdma_user_rate,
    check_mode_compatibility,
    sf_for_user_rate,
    tdma_link_rate,
)

SMALL = dict(fpga_rows=8, fpga_cols=8, fpga_bits_per_clb=32)


class TestSumtsSizing:
    def test_paper_chip_rate(self):
        assert CHIP_RATE_HZ == 2.048e6

    def test_144k_and_384k_reachable(self):
        """The paper's CDMA rates are reachable at sensible SFs."""
        for target in (144e3, 384e3):
            sf = sf_for_user_rate(target)
            assert sf >= 2
            assert cdma_user_rate(sf) >= target

    def test_cdma_ceiling_below_2mbps(self):
        """Why the waveform change is needed: CDMA can't reach 2 Mbps."""
        best = cdma_user_rate(1, bits_per_symbol=2, code_rate=1.0 / 3.0)
        assert best < 2e6

    def test_tdma_reaches_2mbps_goal(self):
        """'the goal for improved links is a 2 Mbps data rate'."""
        assert tdma_link_rate() >= 2e6

    def test_rate_monotone_in_sf(self):
        rates = [cdma_user_rate(sf) for sf in (2, 4, 8, 16, 32)]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_mode_compatibility(self):
        """'working frequencies of both modes are then fully compatible'."""
        compat = check_mode_compatibility()
        assert compat.compatible
        assert compat.cdma_sample_rate == compat.tdma_sample_rate

    def test_unreachable_rate_raises(self):
        with pytest.raises(ValueError):
            sf_for_user_rate(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            cdma_user_rate(3)  # not a power of two
        with pytest.raises(ValueError):
            cdma_user_rate(4, code_rate=0.0)
        with pytest.raises(ValueError):
            tdma_link_rate(burst_efficiency=0.0)


class TestDownlinkTx:
    def _payload(self):
        pl = RegenerativePayload(PayloadConfig(num_carriers=2, **SMALL))
        pl.boot()
        return pl

    def test_downlink_produces_samples(self):
        pl = self._payload()
        pl.route_packets([b"\x00packet-a", b"\x00packet-b"])
        out = pl.build_downlink(0)
        assert out["bursts"] == 2
        assert len(out["samples"]) > 0
        assert np.iscomplexobj(out["samples"])

    def test_empty_port_gives_empty_downlink(self):
        pl = self._payload()
        out = pl.build_downlink(1)
        assert out["bursts"] == 0
        assert len(out["samples"]) == 0

    def test_downlink_is_demodulable(self):
        """Regeneration closes the loop: the downlink burst decodes."""
        pl = self._payload()
        payload_bytes = b"\x00" + bytes(range(24))
        pl.route_packets([payload_bytes])
        out = pl.build_downlink(0)
        # demodulate with the same personality
        modem = pl.demods[0].behaviour()
        rx = modem.receive(out["samples"][: modem.num_tx_samples()])
        chain = pl.decoder.behaviour()
        coded_len = min(len(rx["bits"]), chain.physical_bits)
        llr = (1.0 - 2.0 * rx["bits"][:coded_len].astype(float)) * 4.0
        if coded_len < chain.physical_bits:
            llr = np.concatenate([llr, np.zeros(chain.physical_bits - coded_len)])
        decoded = chain.decode(llr)
        sent_bits = np.unpackbits(np.frombuffer(payload_bytes[1:], dtype=np.uint8))
        got = decoded["bits"][: len(sent_bits)]
        assert np.mean(got != sent_bits) < 0.05

    def test_requires_tdma_tx_personality(self):
        pl = self._payload()
        pl.demods[0].load("modem.cdma")
        pl.route_packets([b"\x00data"])
        with pytest.raises(ValueError):
            pl.build_downlink(0)

    def test_dac_quantization_applied(self):
        pl = self._payload()
        pl.route_packets([b"\x00data"])
        out = pl.build_downlink(0)
        # DAC grid: all sample components on the quantizer lattice
        step = 2.0 / (1 << pl.config.dac_bits)
        re = out["samples"].real / step - 0.5
        assert np.allclose(re, np.round(re), atol=1e-9)
