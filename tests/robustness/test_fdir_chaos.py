"""Traffic-plane chaos acceptance: scenario x seed sweep, zero violations."""

import numpy as np
import pytest

from repro import obs
from repro.robustness.fdir.chaos import (
    TrafficChaosCampaign,
    build_traffic_world,
    default_traffic_scenarios,
    violations,
)

pytestmark = pytest.mark.fdir


def scenario(name):
    matches = [s for s in default_traffic_scenarios() if s.name == name]
    assert matches, f"no scenario {name!r}"
    return matches[0]


class TestWorld:
    def test_world_is_fully_wired(self):
        w = build_traffic_world(seed=1)
        assert len(w.pairs) == 3
        assert all(p.spare.loaded_design is None for p in w.pairs)
        assert w.payload.decoder.loaded_design == "decod.conv"
        assert w.payload.health is w.bank
        # the library holds every personality the ladder may need
        for design in ("modem.tdma", "modem.tdma.robust", "decod.conv"):
            assert w.payload.obc.library.fetch(design) is not None

    def test_one_coded_block_exactly_fills_a_burst(self):
        w = build_traffic_world(seed=1)
        chain = w._ground_chain
        modem = w.ground_modem("modem.tdma")
        assert chain.physical_bits == modem.bits_per_burst


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        c = TrafficChaosCampaign([scenario("lock-loss")])
        a = c.run_one(scenario("lock-loss"), 42)
        b = c.run_one(scenario("lock-loss"), 42)
        assert a.actions == b.actions
        assert a.delivered == b.delivered
        assert a.frame_ok_history == b.frame_ok_history


class TestSingleScenarios:
    """One seed per scenario: fast, failure messages point at the class."""

    @pytest.mark.parametrize(
        "name",
        [s.name for s in default_traffic_scenarios()],
    )
    def test_scenario_holds_invariants(self, name):
        sc = scenario(name)
        campaign = TrafficChaosCampaign([sc])
        outcome = campaign.run_one(sc, 1234)
        assert violations(outcome, sc) == []

    def test_detection_is_prompt(self):
        sc = scenario("lock-loss")
        outcome = TrafficChaosCampaign([sc]).run_one(sc, 7)
        assert outcome.detection_latency is not None
        assert outcome.detection_latency <= sc.frames // 4

    def test_double_fault_latches_terminal_safe_mode(self):
        sc = scenario("double-fault")
        outcome = TrafficChaosCampaign([sc]).run_one(sc, 7)
        assert outcome.terminal_carriers == [0]
        assert outcome.safe_mode == ["demod0"]
        assert outcome.final_active == 2

    def test_fade_ramp_sheds_and_restores(self):
        sc = scenario("fade-ramp")
        outcome = TrafficChaosCampaign([sc]).run_one(sc, 7)
        kinds = [k for k, _, _ in outcome.policy_events]
        assert "shed" in kinds and "restore" in kinds
        assert outcome.final_active == 3

    def test_nominal_control_delivers_everything(self):
        sc = scenario("nominal")
        outcome = TrafficChaosCampaign([sc]).run_one(sc, 7)
        assert outcome.delivered == outcome.attempted
        assert outcome.corrupt_deliveries == 0
        assert not outcome.actions


class TestObservableTrace:
    def test_fault_to_recovery_visible_in_trace(self):
        """Injected fault -> detection -> recovery as deterministic events."""
        sc = scenario("lock-loss")
        with obs.session() as (_reg, tracer):
            TrafficChaosCampaign([sc]).run_one(sc, 7)
            events = [e.kind for e in tracer.events()]
        first_trip = events.index("fdir.trip")
        action = events.index("fdir.action")
        clear = events.index("fdir.clear")
        recovered = events.index("fdir.recovered")
        assert first_trip < action < recovered
        assert first_trip < clear


@pytest.mark.slow
@pytest.mark.chaos
class TestAcceptanceSweep:
    def test_all_scenarios_all_seeds_zero_violations(self):
        """The ISSUE acceptance gate: >= 6 fault scenarios x 5 seeds."""
        campaign = TrafficChaosCampaign()
        assert len(campaign.scenarios) >= 7  # 7 fault classes + control
        campaign.run(seeds=[101, 202, 303, 404, 505])
        bad = campaign.all_violations()
        assert bad == [], "\n".join(
            f"{s}/{seed}: {msg}" for s, seed, msg in bad
        )
        # and the sweep actually moved data
        total = sum(o.delivered for o in campaign.outcomes)
        assert total > 0
        assert all(o.completed for o in campaign.outcomes)
        assert np.mean(
            [o.delivery_rate for o in campaign.outcomes]
        ) > 0.7
