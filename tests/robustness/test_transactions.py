"""Tests for the TC/TM transaction layer: recv_within, client, dedup."""

import json

import pytest

from repro.net import Link, Node
from repro.net.udp import UdpSocket
from repro.robustness import (
    RetryExhausted,
    RetryPolicy,
    TC_PORT,
    TcDedupCache,
    TcTransactionClient,
    TransactionError,
)
from repro.robustness.chaos import arm_blackhole, arm_frame_drop
from repro.robustness.transactions import recv_within
from repro.sim import Simulator


def linked_pair(delay=0.25, ber=0.0):
    sim = Simulator()
    ground = Node(sim, "ncc", 1)
    space = Node(sim, "sat", 2)
    link = Link(sim, delay=delay, rate_bps=1e6, ber=ber)
    link.attach(ground)
    link.attach(space)
    return sim, ground, space, link


def start_echo_server(sim, node, mangle=None):
    """A minimal TC server: replies {"tc_id", "success": True} per datagram."""
    stats = {"served": 0}

    def server():
        sock = UdpSocket(node.ip, TC_PORT)
        while True:
            data, (addr, port) = yield sock.recv()
            stats["served"] += 1
            msg = json.loads(data.decode())
            reply = {"tc_id": msg["tc_id"], "success": True, "payload": {}}
            out = json.dumps(reply).encode()
            if mangle is not None:
                out = mangle(out, stats["served"])
            sock.sendto(out, addr, port)

    sim.process(server(), name="echo-tc-server")
    return stats


def drive(sim, gen, until=1e6):
    box = {}

    def main():
        try:
            box["value"] = yield from gen
            box["t_done"] = sim.now
        except BaseException as exc:  # noqa: BLE001
            box["error"] = exc
            box["t_error"] = sim.now

    sim.process(main())
    sim.run(until=until)
    return box


class TestRecvWithin:
    def test_returns_datagram_before_timeout(self):
        sim, ground, space, _ = linked_pair()
        server = UdpSocket(space.ip, 4000)

        def responder():
            data, (addr, port) = yield server.recv()
            server.sendto(b"pong", addr, port)

        sim.process(responder())
        client = UdpSocket(ground.ip, 4001)
        client.sendto(b"ping", 2, 4000)
        box = drive(sim, recv_within(sim, client, 10.0))
        data, (addr, _port) = box["value"]
        assert data == b"pong" and addr == 2

    def test_timeout_returns_none_without_swallowing_later_data(self):
        sim, ground, space, _ = linked_pair()
        client = UdpSocket(ground.ip, 4001)
        box = drive(sim, recv_within(sim, client, 1.0), until=50)
        assert box["value"] is None
        assert box["t_done"] == pytest.approx(1.0)
        # the cancelled recv must not eat a datagram that arrives later
        server = UdpSocket(space.ip, 4000)
        server.sendto(b"late", 1, 4001)
        box2 = drive(sim, recv_within(sim, client, 10.0), until=100)
        data, _src = box2["value"]
        assert data == b"late"


class TestTcTransactionClient:
    def test_clean_link_single_datagram(self):
        sim, ground, space, _ = linked_pair()
        served = start_echo_server(sim, space)
        client = TcTransactionClient(ground, sat_address=2)
        box = drive(sim, client.request(1, "status", {}))
        assert box["value"]["success"] is True
        assert served["served"] == 1
        assert client.stats["sent"] == 1
        assert client.stats["retransmits"] == 0
        assert client.stats["completed"] == 1

    def test_retransmits_through_dropped_frames(self):
        sim, ground, space, _ = linked_pair()
        served = start_echo_server(sim, space)
        drop = arm_frame_drop(space, count=2)  # first two TC copies vanish
        client = TcTransactionClient(
            ground, 2, policy=RetryPolicy(max_attempts=5, base_delay=2.0, jitter=0.0)
        )
        box = drive(sim, client.request(7, "status", {}))
        assert box["value"]["tc_id"] == 7
        assert drop["dropped"] == 2
        assert client.stats["retransmits"] == 2
        assert client.stats["timeouts"] == 2
        assert served["served"] == 1  # only the third copy arrived

    def test_dead_link_raises_bounded_retry_exhausted(self):
        sim, ground, space, _ = linked_pair()
        start_echo_server(sim, space)
        arm_blackhole(space)  # satellite receiver is dead
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, multiplier=2.0, jitter=0.0)
        client = TcTransactionClient(ground, 2, policy=policy)
        box = drive(sim, client.request(3, "reconfigure", {"equipment": "demod0"}))
        err = box["error"]
        assert isinstance(err, RetryExhausted)
        assert isinstance(err.last_error, TransactionError)
        assert err.name == "tc.reconfigure"
        # the transaction fails at bounded *simulated* time: the sum of
        # the listen windows (1+2+4+8), not "never"
        assert box["t_error"] == pytest.approx(15.0)
        assert client.stats["exhausted"] == 1
        assert client.stats["sent"] == 4

    def test_stale_and_garbled_replies_are_filtered(self):
        sim, ground, space, _ = linked_pair()

        def mangle(out, served):
            if served == 1:
                return b"\xff\xfenot json"
            if served == 2:
                reply = json.loads(out.decode())
                reply["tc_id"] = 9999  # stale: some other transaction's id
                return json.dumps(reply).encode()
            return out

        start_echo_server(sim, space, mangle=mangle)
        client = TcTransactionClient(
            ground, 2, policy=RetryPolicy(max_attempts=5, base_delay=3.0, jitter=0.0)
        )
        box = drive(sim, client.request(5, "status", {}))
        assert box["value"]["tc_id"] == 5
        assert client.stats["garbled"] == 1
        assert client.stats["stale"] == 1

    def test_socket_released_after_transaction(self):
        sim, ground, space, _ = linked_pair()
        start_echo_server(sim, space)
        client = TcTransactionClient(ground, 2)
        before = len(getattr(ground.ip, "_udp_demux", {}))
        drive(sim, client.request(1, "status", {}))
        assert len(ground.ip._udp_demux) == before


class TestTcDedupCache:
    def test_miss_then_hit(self):
        cache = TcDedupCache()
        assert cache.get(1) is None
        cache.put(1, b"reply-1")
        assert 1 in cache
        assert cache.get(1) == b"reply-1"
        assert cache.hits == 1 and cache.misses == 1

    def test_fifo_eviction_past_capacity(self):
        cache = TcDedupCache(capacity=3)
        for i in range(1, 6):
            cache.put(i, f"r{i}".encode())
        assert len(cache) == 3
        assert 1 not in cache and 2 not in cache
        assert cache.get(5) == b"r5"

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TcDedupCache(capacity=0)
