"""Solid-state recorder: bounded store, priority eviction, playback."""

import pytest

from repro.robustness.dtn import PRIORITY_CLASSES, SolidStateRecorder

pytestmark = pytest.mark.dtn


def rec_bytes(record):
    import json

    return len(json.dumps(record).encode())


class TestRecording:
    def test_records_below_capacity_are_never_lost(self):
        ssr = SolidStateRecorder(capacity_bytes=1 << 16)
        for i in range(50):
            assert ssr.record({"seq": i}, cls="p2")
        assert ssr.pending() == 50
        assert ssr.stats["shed"] == 0
        ssr.authorize(50)
        assert ssr.drain_authorized() == [{"seq": i} for i in range(50)]

    def test_unknown_class_rejected(self):
        ssr = SolidStateRecorder()
        with pytest.raises(ValueError):
            ssr.record({"x": 1}, cls="p9")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SolidStateRecorder(capacity_bytes=0)

    def test_oversized_record_dropped(self):
        ssr = SolidStateRecorder(capacity_bytes=64)
        assert not ssr.record({"blob": "x" * 500}, cls="p0")
        assert ssr.stats["dropped"] == 1
        assert ssr.pending() == 0


class TestEviction:
    def test_overflow_evicts_lowest_class_first(self):
        one = rec_bytes({"seq": 0, "cls": "p2"})
        ssr = SolidStateRecorder(capacity_bytes=one * 6)
        for i in range(3):
            ssr.record({"seq": i, "cls": "p2"}, cls="p2")
        for i in range(3):
            ssr.record({"seq": i, "cls": "p1"}, cls="p1")
        # store is full: p0 arrivals must displace p2 (oldest first)
        for i in range(2):
            assert ssr.record({"seq": i, "cls": "p0"}, cls="p0")
        assert ssr.shed_by_class["p2"] == 2
        assert ssr.shed_by_class["p0"] == 0
        assert ssr.pending("p2") == 1
        assert ssr.pending("p1") == 3
        assert ssr.pending("p0") == 2
        assert ssr.stats["evicted"] == 2

    def test_low_priority_never_displaces_high(self):
        one = rec_bytes({"seq": 0, "cls": "p0"})
        ssr = SolidStateRecorder(capacity_bytes=one * 2)
        ssr.record({"seq": 0, "cls": "p0"}, cls="p0")
        ssr.record({"seq": 1, "cls": "p0"}, cls="p0")
        # a p2 arrival cannot evict stored p0: it is itself dropped
        assert not ssr.record({"seq": 0, "cls": "p2"}, cls="p2")
        assert ssr.stats["dropped"] == 1
        assert ssr.pending("p0") == 2

    def test_conservation_laws_close(self):
        """recorded + dropped == offered; played + pending + evicted
        == recorded -- the invariants the chaos campaign checks."""
        one = rec_bytes({"seq": 0, "cls": "p2"})
        ssr = SolidStateRecorder(capacity_bytes=one * 4)
        offered = 0
        for i in range(20):
            cls = PRIORITY_CLASSES[i % 3]
            ssr.record({"seq": i, "cls": cls}, cls=cls)
            offered += 1
        ssr.authorize(3)
        played = len(ssr.drain_authorized())
        st = ssr.status()
        assert st["recorded"] + st["dropped"] == offered
        assert played + st["pending"] + st["evicted"] == st["recorded"]


class TestPlayback:
    def test_nothing_released_without_authorization(self):
        ssr = SolidStateRecorder()
        ssr.record({"seq": 0}, cls="p1")
        assert ssr.drain_authorized() == []
        assert ssr.pending() == 1

    def test_budget_is_consumed_and_priority_ordered(self):
        ssr = SolidStateRecorder()
        ssr.record({"cls": "p2"}, cls="p2")
        ssr.record({"cls": "p0"}, cls="p0")
        ssr.record({"cls": "p1"}, cls="p1")
        ssr.authorize(2)
        out = ssr.drain_authorized()
        assert [r["cls"] for r in out] == ["p0", "p1"]
        assert ssr.authorized == 0
        assert ssr.drain_authorized() == []  # budget spent

    def test_max_records_chunks_a_large_budget(self):
        ssr = SolidStateRecorder()
        for i in range(10):
            ssr.record({"seq": i}, cls="p1")
        ssr.authorize(10)
        assert len(ssr.drain_authorized(max_records=4)) == 4
        assert ssr.authorized == 6

    def test_revoke_cancels_outstanding_budget(self):
        ssr = SolidStateRecorder()
        ssr.record({"seq": 0}, cls="p1")
        ssr.authorize(5)
        ssr.revoke()
        assert ssr.drain_authorized() == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SolidStateRecorder().authorize(-1)

    def test_status_snapshot(self):
        ssr = SolidStateRecorder(capacity_bytes=4096, name="tmrec")
        ssr.record({"seq": 0}, cls="p0")
        st = ssr.status()
        assert st["pending"] == 1
        assert st["pending_by_class"]["p0"] == 1
        assert st["capacity_bytes"] == 4096
        assert 0 < st["bytes_used"] <= 4096
