"""Contact plans, outage events and the link scheduler."""

import pytest

from repro.net import Link, Node
from repro.robustness.dtn import (
    ContactPlan,
    ContactWindow,
    LinkScheduler,
    OutageEvent,
)
from repro.sim import Simulator

pytestmark = pytest.mark.dtn


def make_link():
    sim = Simulator()
    a = Node(sim, "gs", 1)
    b = Node(sim, "sat", 2)
    link = Link(sim, delay=0.25, rate_bps=1e6)
    link.attach(a)
    link.attach(b)
    return sim, a, b, link


class TestContactPlan:
    def test_empty_plan_is_permanent_contact(self):
        plan = ContactPlan()
        assert plan.permanent
        assert plan.in_contact(0.0) and plan.in_contact(1e9)
        assert plan.next_contact(42.0) == 42.0
        assert plan.contact_seconds(100.0) == 100.0

    def test_window_queries(self):
        plan = ContactPlan(
            (ContactWindow(10.0, 20.0), ContactWindow(50.0, 70.0))
        )
        assert not plan.in_contact(5.0)
        assert plan.in_contact(10.0)
        assert not plan.in_contact(20.0)  # end-exclusive
        assert plan.window_at(55.0).start == 50.0
        assert plan.next_contact(0.0) == 10.0
        assert plan.next_contact(15.0) == 15.0  # already inside
        assert plan.next_contact(30.0) == 50.0
        assert plan.next_contact(80.0) is None
        assert plan.contact_seconds(60.0) == 20.0

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError):
            ContactPlan((ContactWindow(0.0, 20.0), ContactWindow(10.0, 30.0)))

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            ContactPlan((ContactWindow(20.0, 10.0),))

    def test_outage_validation(self):
        sim, a, b, link = make_link()
        with pytest.raises(ValueError):
            LinkScheduler(link, ContactPlan(), (OutageEvent(5.0, -1.0),))


class TestLinkScheduler:
    def test_plan_drives_link_up_and_down(self):
        sim, a, b, link = make_link()
        plan = ContactPlan((ContactWindow(5.0, 10.0), ContactWindow(20.0, 30.0)))
        sched = LinkScheduler(link, plan)
        states = []

        def sampler(sim):
            for _ in range(35):
                states.append((sim.now, link.up))
                yield sim.timeout(1.0)

        sim.process(sampler(sim))
        sim.run(until=40.0)
        by_t = dict(states)
        assert by_t[0.0] is False
        assert by_t[6.0] is True
        assert by_t[12.0] is False
        assert by_t[25.0] is True
        assert by_t[31.0] is False
        assert sched.passes == 2
        st = sched.stats()
        # initial drop to out-of-contact at t=0, then 2 rises + 2 sets
        assert st["transitions"] == 5
        assert st["contact_s"] == pytest.approx(15.0)

    def test_outage_punches_hole_into_window(self):
        sim, a, b, link = make_link()
        plan = ContactPlan((ContactWindow(0.0, 100.0),))
        sched = LinkScheduler(link, plan, (OutageEvent(10.0, 5.0),))
        assert sched.effective(5.0)
        assert not sched.effective(12.0)
        assert sched.effective(15.0)
        # next_contact skips over the outage hole
        assert sched.next_contact(12.0) == 15.0
        sim.run(until=20.0)
        assert link.up

    def test_next_contact_exhausted_plan(self):
        sim, a, b, link = make_link()
        sched = LinkScheduler(link, ContactPlan((ContactWindow(1.0, 2.0),)))
        assert sched.next_contact(5.0) is None

    def test_contact_callbacks_fire_on_rise(self):
        sim, a, b, link = make_link()
        sched = LinkScheduler(link, ContactPlan((ContactWindow(5.0, 10.0),)))
        rises = []
        sched.notify_contact(lambda: rises.append(sim.now))
        sim.run(until=20.0)
        assert rises == [5.0]

    def test_hard_down_drops_traffic_both_ways(self):
        """Frames offered or in flight during an outage are dropped."""
        sim, a, b, link = make_link()
        LinkScheduler(
            link, ContactPlan(), (OutageEvent(1.0, 5.0),), name="drop"
        )
        got = []
        b.frame_tap = got.append

        def talker(sim):
            a.send_frame(b"before")  # arrives at 0.25
            yield sim.timeout(0.9)
            a.send_frame(b"in-flight")  # sent up, arrives 1.15: dropped
            yield sim.timeout(1.0)
            a.send_frame(b"during")  # dropped at tx
            yield sim.timeout(5.0)
            a.send_frame(b"after")

        sim.process(talker(sim))
        sim.run(until=10.0)
        assert got == [b"before", b"after"]
        assert link.stats["outage_dropped"] == 2
