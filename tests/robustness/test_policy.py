"""Tests for RetryPolicy / run_with_retry (bounded backoff + jitter)."""

import numpy as np
import pytest

from repro import obs
from repro.robustness import RetryExhausted, RetryPolicy, run_with_retry
from repro.sim import RngRegistry, Simulator


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(-1)

    def test_exponential_growth_without_jitter(self):
        p = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=60.0, jitter=0.0)
        assert [p.delay_for(k) for k in range(4)] == [1.0, 2.0, 4.0, 8.0]

    def test_clamped_to_max_delay(self):
        p = RetryPolicy(base_delay=10.0, multiplier=4.0, max_delay=25.0, jitter=0.0)
        assert p.delay_for(0) == 10.0
        assert p.delay_for(1) == 25.0
        assert p.delay_for(5) == 25.0

    def test_no_rng_means_deterministic_even_with_jitter(self):
        p = RetryPolicy(jitter=0.5)
        assert p.delay_for(2) == p.delay_for(2) == 4.0

    def test_jitter_bounded_and_seed_reproducible(self):
        p = RetryPolicy(base_delay=2.0, jitter=0.25)
        a = [p.delay_for(1, np.random.default_rng(7)) for _ in range(5)]
        b = [p.delay_for(1, np.random.default_rng(7)) for _ in range(5)]
        assert a == b  # same seed, same delays
        for d in a:
            assert 4.0 * 0.75 <= d <= 4.0 * 1.25

    def test_total_delay_bound_covers_jittered_sum(self):
        p = RetryPolicy(max_attempts=5, base_delay=1.0, jitter=0.1)
        rng = np.random.default_rng(3)
        total = sum(p.delay_for(k, rng) for k in range(p.max_attempts))
        assert total <= p.total_delay_bound()


def _drive(sim, gen, until=1e6):
    box = {}

    def main():
        try:
            box["value"] = yield from gen
            box["t_done"] = sim.now
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            box["error"] = exc
            box["t_error"] = sim.now

    sim.process(main())
    sim.run(until=until)
    return box


class TestRunWithRetry:
    def _flaky(self, sim, fail_times, exc=OSError):
        calls = {"n": 0}

        def make_attempt(_k):
            def attempt():
                calls["n"] += 1
                yield sim.timeout(1.0)
                if calls["n"] <= fail_times:
                    raise exc(f"attempt {calls['n']} failed")
                return f"ok after {calls['n']}"

            return attempt()

        return make_attempt, calls

    def test_first_try_success_no_backoff(self):
        sim = Simulator()
        make, calls = self._flaky(sim, fail_times=0)
        box = _drive(sim, run_with_retry(sim, make, name="op"))
        assert box["value"] == "ok after 1"
        assert calls["n"] == 1
        assert box["t_done"] == 1.0  # just the attempt, no backoff ever waited

    def test_recovers_after_failures_with_backoff(self):
        sim = Simulator()
        make, calls = self._flaky(sim, fail_times=2)
        policy = RetryPolicy(max_attempts=4, base_delay=2.0, multiplier=2.0, jitter=0.0)
        box = _drive(sim, run_with_retry(sim, make, policy=policy, name="op"))
        assert box["value"] == "ok after 3"
        assert calls["n"] == 3
        # 3 attempts x 1 s  +  backoffs 2 s + 4 s
        assert box["t_done"] == pytest.approx(3.0 + 2.0 + 4.0)

    def test_exhaustion_raises_with_context(self):
        sim = Simulator()
        make, calls = self._flaky(sim, fail_times=99)
        policy = RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.0)
        box = _drive(sim, run_with_retry(sim, make, policy=policy, name="upload.tftp"))
        err = box["error"]
        assert isinstance(err, RetryExhausted)
        assert err.name == "upload.tftp"
        assert err.attempts == 3
        assert isinstance(err.last_error, OSError)
        assert calls["n"] == 3
        # bounded: all attempts + all backoffs fit under the policy bound
        assert box["t_error"] <= 3 * 1.0 + policy.total_delay_bound()

    def test_unlisted_exception_propagates_immediately(self):
        sim = Simulator()
        make, calls = self._flaky(sim, fail_times=99, exc=KeyError)
        box = _drive(
            sim, run_with_retry(sim, make, retry_on=(OSError,), name="op")
        )
        assert isinstance(box["error"], KeyError)
        assert calls["n"] == 1  # no retry on unlisted exceptions

    def test_jitter_uses_supplied_stream_deterministically(self):
        times = []
        for _ in range(2):
            sim = Simulator()
            make, _ = self._flaky(sim, fail_times=3)
            policy = RetryPolicy(max_attempts=5, base_delay=2.0, jitter=0.2)
            rng = RngRegistry(11).stream("retry")
            box = _drive(sim, run_with_retry(sim, make, policy=policy, rng=rng, name="op"))
            times.append(box["t_done"])
        assert times[0] == times[1]

    def test_probe_counters(self):
        with obs.session() as (reg, _):
            sim = Simulator()
            make, _ = self._flaky(sim, fail_times=2)
            policy = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.0)
            box = _drive(sim, run_with_retry(sim, make, policy=policy, name="op"))
            assert box["value"].startswith("ok")
            assert reg.value("robustness.retry.attempts", operation="op") == 3
            assert reg.value("robustness.retry.failures", operation="op") == 2
            assert reg.value("robustness.retry.retries", operation="op") == 2
            assert reg.value("robustness.retry.recovered", operation="op") == 1
