"""Regression tests for the pre-robustness campaign failure modes.

Three historical bugs, each pinned by a test:

1. ``send_telecommand`` did ``sendto(); yield recv()`` -- a dropped TC
   or TM datagram stranded the ground process *forever* (no sim-time
   timeout).  The transaction layer must fail at bounded simulated time.
2. The ``store``-failure path built its :class:`CampaignResult` from the
   raw error payload, so ``result.telemetry["crc"]`` /
   ``["rolled_back"]`` raised ``KeyError`` depending on which step
   failed.  Both paths must now carry normalized telemetry.
3. ``ReconfigurationManager`` crashed (uncaught ``KeyError``) when the
   previous design could be recovered from *neither* the library nor
   the design registry; it must degrade to ``rollback-none`` instead.
"""

import numpy as np
import pytest

from repro.core import PayloadConfig, RegenerativePayload
from repro.core.bitstore import BitstreamLibrary
from repro.core.registry import FunctionRegistry
from repro.fpga.memory import OnboardMemory
from repro.net.udp import UdpSocket
from repro.robustness import RetryExhausted, RetryPolicy
from repro.robustness.chaos import arm_blackhole, build_world
from repro.robustness.transactions import TC_PORT

GEOM = (8, 8, 32)


class TestSendTelecommandBoundedTimeout:
    """Regression: a lost TC/TM datagram must not hang the NCC forever."""

    def test_old_raw_pattern_hangs_demo(self):
        """The pre-robustness pattern provably hangs on a dead link."""
        world = build_world(seed=0)
        arm_blackhole(world.space)  # satellite receiver dead

        def old_send_telecommand():
            # verbatim shape of the old campaign code: no timeout race
            sock = UdpSocket(world.ground.ip)
            sock.sendto(b'{"tc_id": 1, "action": "status", "args": {}}', 2, TC_PORT)
            yield sock.recv()  # <- blocks forever when the reply is lost

        proc = world.sim.process(old_send_telecommand())
        world.sim.run(until=7 * 24 * 3600.0)  # a week of simulated time
        assert not proc.triggered  # still stranded: that was the bug

    def test_new_transaction_fails_at_bounded_sim_time(self):
        policy = RetryPolicy(max_attempts=3, base_delay=2.0, multiplier=2.0, jitter=0.0)
        world = build_world(seed=0, tc_policy=policy)
        arm_blackhole(world.space)
        box = {}

        def campaign():
            try:
                yield from world.ncc.send_telecommand("status", {})
            except RetryExhausted as exc:
                box["error"] = exc
                box["t"] = world.sim.now

        world.sim.run(until=0)  # let servers start
        world.sim.process(campaign())
        world.sim.run(until=7 * 24 * 3600.0)
        assert isinstance(box["error"], RetryExhausted)
        # listen windows 2 + 4 + 8 s: detection within the policy bound,
        # not a week-long hang
        assert box["t"] == pytest.approx(14.0)
        assert box["t"] <= policy.total_delay_bound()


class TestStoreFailureResultNormalization:
    """Regression: the store-failure CampaignResult omitted telemetry keys."""

    def _world_with_full_memory(self):
        world = build_world(seed=0)
        tiny = BitstreamLibrary(OnboardMemory(capacity_bytes=64))
        world.payload.obc.library = tiny
        world.payload.obc.manager.library = tiny
        world.payload.obc.manager.reconfig.library = tiny
        return world

    def test_store_failure_result_carries_normalized_telemetry(self):
        world = self._world_with_full_memory()
        box = {}

        def campaign():
            box["res"] = yield from world.ncc.reconfigure_equipment(
                "demod0", "modem.tdma", protocol="tftp"
            )

        world.sim.process(campaign())
        world.sim.run(until=3600)
        res = box["res"]
        assert not res.success
        # the exact keys the old code raised KeyError on:
        assert res.crc is None
        assert res.rolled_back is False
        assert res.safe_mode is False
        for key in ("crc", "rolled_back", "safe_mode", "final_function", "error"):
            assert key in res.telemetry, key
        assert "memory full" in res.telemetry["error"] or "error" in res.telemetry
        # the payload was never touched: still on its boot personality
        assert world.payload.demods[0].loaded_design == "modem.cdma"

    def test_full_campaign_result_has_the_same_shape(self):
        world = build_world(seed=0)
        box = {}

        def campaign():
            box["res"] = yield from world.ncc.reconfigure_equipment(
                "demod0", "modem.tdma", protocol="tftp"
            )

        world.sim.process(campaign())
        world.sim.run(until=3600)
        res = box["res"]
        assert res.success
        for key in ("crc", "rolled_back", "safe_mode", "final_function"):
            assert key in res.telemetry, key
        assert res.crc is not None
        assert res.telemetry["final_function"] == "modem.tdma"


class TestRollbackWithUnrecoverablePreviousImage:
    """Regression: rollback must degrade, not crash, when the previous
    design is gone from both the library and the registry."""

    def _payload(self):
        payload = RegenerativePayload(
            PayloadConfig(
                num_carriers=1,
                fpga_rows=GEOM[0],
                fpga_cols=GEOM[1],
                fpga_bits_per_clb=GEOM[2],
            )
        )
        payload.boot(modem="modem.cdma")
        return payload

    def test_rollback_none_when_no_previous_configuration(self):
        payload = self._payload()
        eq = payload.demods[0]
        eq.unload()  # blank FPGA: nothing to roll back to
        steps = []
        ok = payload.obc.manager._rollback(eq, None, None, steps)
        assert ok is False
        assert steps[-1].step == "rollback-none"
        assert eq.loaded_design is None

    def test_execute_survives_prev_design_missing_everywhere(self):
        payload = self._payload()
        eq = payload.demods[0]
        manager = payload.obc.manager
        # target available in the library; previous design nowhere:
        payload.obc.library.store(
            payload.registry.get("modem.tdma").bitstream_for(*GEOM)
        )
        pruned = FunctionRegistry()
        pruned.add(payload.registry.get("modem.tdma"))
        eq.registry = pruned  # "modem.cdma" no longer renderable
        rng = np.random.default_rng(0)

        def corrupt(fpga):
            fpga.upset_bits(rng.integers(0, fpga.num_config_bits, size=16))

        report = manager.execute(eq, "modem.tdma", corrupt_hook=corrupt)
        # validation failed and rollback found nothing -- but no crash:
        assert not report.success
        assert not report.rolled_back
        assert report.final_function is None
        assert any(s.step == "rollback-none" for s in report.steps)

    def test_execute_still_rolls_back_via_registry_when_library_lacks_prev(self):
        payload = self._payload()
        eq = payload.demods[0]
        manager = payload.obc.manager
        payload.obc.library.store(
            payload.registry.get("modem.tdma").bitstream_for(*GEOM)
        )
        # library has only the target; prev (modem.cdma) re-renders from
        # the full registry -- the graceful intermediate case
        rng = np.random.default_rng(0)

        def corrupt(fpga):
            fpga.upset_bits(rng.integers(0, fpga.num_config_bits, size=16))

        report = manager.execute(eq, "modem.tdma", corrupt_hook=corrupt)
        assert not report.success
        assert report.rolled_back
        assert report.final_function == "modem.cdma"
        assert eq.operational
