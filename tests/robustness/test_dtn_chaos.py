"""Outage chaos campaign: the DTN acceptance sweep.

Every scenario x 5 seeds with zero invariant violations is the
tentpole's acceptance bar; the per-scenario tests below keep failures
readable when one disruption pattern regresses.
"""

import pytest

from repro.robustness.dtn import (
    OutageChaosCampaign,
    default_outage_scenarios,
)

pytestmark = [pytest.mark.dtn, pytest.mark.chaos]


def by_name(name):
    for s in default_outage_scenarios():
        if s.name == name:
            return s
    raise KeyError(name)


class TestScenarioCatalog:
    def test_four_canonical_disruption_patterns(self):
        names = [s.name for s in default_outage_scenarios()]
        assert names == [
            "scheduled-pass",
            "mid-upload-blackout",
            "flapping-link",
            "recorder-overflow",
        ]


class TestSingleScenarios:
    def test_scheduled_pass_delivers_every_record(self):
        c = OutageChaosCampaign(seeds=(1,), scenarios=[by_name("scheduled-pass")])
        (out,) = c.run()
        assert out.violations() == []
        assert sum(out.produced.values()) > 0
        assert out.delivered == out.produced
        assert out.monitor_gaps == 0
        assert out.recorder_status["shed"] == 0

    def test_blackout_resume_beats_restart_from_zero(self):
        c = OutageChaosCampaign(
            seeds=(1,), scenarios=[by_name("mid-upload-blackout")]
        )
        (out,) = c.run()
        assert out.violations() == []
        assert out.upload_done and out.assembled_ok
        st = out.upload_state
        assert st.resumes >= 1
        # the acceptance numbers: < 1.5x resumable vs >= 2x naive
        assert st.overhead_ratio < 1.5
        assert out.naive_bytes >= 2 * out.scenario.upload_size

    def test_flapping_link_keeps_tc_exactly_once(self):
        c = OutageChaosCampaign(seeds=(1,), scenarios=[by_name("flapping-link")])
        (out,) = c.run()
        assert out.violations() == []
        assert out.ncc_stats["retransmits"] > 0
        executed = out.gateway_stats["executed"]
        rejected = out.gateway_stats["rejected"]
        assert executed + rejected <= out.ncc_stats["tc_issued"]

    def test_recorder_overflow_sheds_low_priority_only(self):
        c = OutageChaosCampaign(
            seeds=(1,), scenarios=[by_name("recorder-overflow")]
        )
        (out,) = c.run()
        assert out.violations() == []
        rec = out.recorder_status
        assert rec["shed"] > 0
        assert rec["shed_by_class"]["p0"] == 0
        assert out.delivered["p0"] == out.produced["p0"]


class TestAcceptanceSweep:
    def test_every_scenario_every_seed_zero_violations(self):
        """The tentpole acceptance bar: 4 scenarios x 5 seeds, clean."""
        campaign = OutageChaosCampaign()
        campaign.run()
        assert len(campaign.outcomes) == 20
        assert campaign.all_violations() == []

    def test_campaign_is_deterministic_per_seed(self):
        s = by_name("mid-upload-blackout")
        a = OutageChaosCampaign(seeds=(3,), scenarios=[s]).run()[0]
        b = OutageChaosCampaign(seeds=(3,), scenarios=[s]).run()[0]
        assert a.upload_state.bytes_sent == b.upload_state.bytes_sent
        assert a.upload_state.resumes == b.upload_state.resumes
        assert a.naive_bytes == b.naive_bytes
