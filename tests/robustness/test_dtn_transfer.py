"""Resumable (CFDP-style) transfers: state, receiver, end-to-end resume."""

import zlib

import pytest

from repro.core.obc import OnBoardController
from repro.core.registry import FunctionRegistry
from repro.ncc.campaign import NetworkControlCenter, SatelliteGateway
from repro.net import Link, Node
from repro.robustness.dtn import (
    ContactPlan,
    LinkScheduler,
    OutageEvent,
    ResumableReceiver,
    ResumableUploader,
    TransferState,
    restart_from_zero_upload,
    segment_name,
)
from repro.sim import RngRegistry, Simulator

pytestmark = pytest.mark.dtn


class TestTransferState:
    def test_segment_accounting(self):
        st = TransferState.for_blob("f.bit", b"x" * 10000, segment_size=4096)
        assert st.num_segments == 3
        assert st.missing() == [0, 1, 2]
        st.completed.add(1)
        assert st.missing() == [0, 2]
        assert st.progress == pytest.approx(1 / 3)

    def test_empty_blob_has_one_segment(self):
        st = TransferState.for_blob("f.bit", b"", segment_size=4096)
        assert st.num_segments == 1
        assert st.overhead_ratio == 1.0

    def test_json_round_trip(self):
        st = TransferState.for_blob("f.bit", b"y" * 5000, segment_size=1024)
        st.completed |= {0, 3}
        st.bytes_sent = 2048
        st.resumes = 2
        back = TransferState.from_json(st.to_json())
        assert back == st

    def test_segment_name_is_stable(self):
        assert segment_name("f.bit", 7) == "f.bit.seg00007"


class TestResumableReceiver:
    def blob(self):
        return bytes(range(256)) * 8  # 2048 bytes

    def seed_segments(self, uploads, blob, seg=512, skip=()):
        n = -(-len(blob) // seg)
        for i in range(n):
            if i in skip:
                continue
            uploads[segment_name("f.bit", i)] = blob[i * seg : (i + 1) * seg]
        return n

    def finish_args(self, blob, segments):
        return {
            "filename": "f.bit",
            "segments": segments,
            "size": len(blob),
            "crc32": zlib.crc32(blob) & 0xFFFFFFFF,
        }

    def test_status_reports_present_segments(self):
        uploads = {}
        rx = ResumableReceiver(uploads)
        blob = self.blob()
        n = self.seed_segments(uploads, blob, skip=(1,))
        ok, payload = rx.handle("xfer_status", {"filename": "f.bit", "segments": n})
        assert ok
        assert payload["present"] == [0, 2, 3]
        assert payload["assembled"] is False

    def test_finish_reports_missing(self):
        uploads = {}
        rx = ResumableReceiver(uploads)
        blob = self.blob()
        n = self.seed_segments(uploads, blob, skip=(2,))
        ok, payload = rx.handle("xfer_finish", self.finish_args(blob, n))
        assert not ok
        assert payload["missing"] == [2]

    def test_finish_assembles_and_cleans_up(self):
        uploads = {}
        rx = ResumableReceiver(uploads)
        blob = self.blob()
        n = self.seed_segments(uploads, blob)
        ok, payload = rx.handle("xfer_finish", self.finish_args(blob, n))
        assert ok and payload["size"] == len(blob)
        assert uploads["f.bit"] == blob
        assert not any(k.startswith("f.bit.seg") for k in uploads)

    def test_finish_is_idempotent(self):
        uploads = {}
        rx = ResumableReceiver(uploads)
        blob = self.blob()
        n = self.seed_segments(uploads, blob)
        rx.handle("xfer_finish", self.finish_args(blob, n))
        ok, payload = rx.handle("xfer_finish", self.finish_args(blob, n))
        assert ok and payload.get("already") is True
        assert uploads["f.bit"] == blob

    def test_crc_mismatch_purges_segments(self):
        uploads = {}
        rx = ResumableReceiver(uploads)
        blob = self.blob()
        n = self.seed_segments(uploads, blob)
        uploads[segment_name("f.bit", 1)] = b"corrupted!" * 51
        args = self.finish_args(blob, n)
        args["size"] = len(blob)
        ok, payload = rx.handle("xfer_finish", args)
        assert not ok
        assert payload["missing"] == list(range(n))
        assert not any(k.startswith("f.bit.seg") for k in uploads)

    def test_unknown_action_rejected(self):
        ok, payload = ResumableReceiver({}).handle("xfer_evil", {})
        assert not ok and "unknown" in payload["error"]


class _Host:
    def __init__(self):
        self.obc = OnBoardController()


def ground_segment(outages=(), windows=()):
    sim = Simulator()
    reg = RngRegistry(7)
    ground = Node(sim, "ncc", 1)
    space = Node(sim, "sat", 2)
    link = Link(sim, delay=0.25, rate_bps=1e6)
    link.attach(ground)
    link.attach(space)
    from repro.robustness.dtn import ContactWindow

    plan = ContactPlan(tuple(ContactWindow(s, e) for s, e in windows))
    sched = LinkScheduler(
        link, plan, tuple(OutageEvent(s, d) for s, d in outages), name="test"
    )
    gateway = SatelliteGateway(space, _Host())
    receiver = ResumableReceiver(gateway.uploads)
    gateway.attach_transfer(receiver)
    ncc = NetworkControlCenter(
        ground, FunctionRegistry(), sat_address=2, rng=reg.stream("jitter")
    )
    return sim, ncc, gateway, sched


class TestResumableUpload:
    def test_clean_link_costs_exactly_one_file(self):
        sim, ncc, gateway, sched = ground_segment()
        up = ResumableUploader(ncc, sched, segment_size=4096)
        blob = bytes(range(256)) * 32  # 8192 bytes
        done = {}

        def driver():
            done["state"] = yield from up.upload("f.bit", blob, "tftp")

        sim.process(driver())
        sim.run(until=200.0)
        st = done["state"]
        assert st.finished and st.resumes == 0
        assert st.bytes_sent == len(blob)
        assert gateway.uploads["f.bit"] == blob

    def test_blackout_resume_never_resends_completed_segments(self):
        """The ISSUE acceptance numbers: a mid-transfer blackout costs
        the resumable path < 1.5x the file size while restart-from-zero
        pays >= 2x on the identical outage timeline."""
        blob = bytes(range(256)) * 128  # 32768 bytes
        outages = ((12.0, 60.0),)

        sim, ncc, gateway, sched = ground_segment(outages=outages)
        up = ResumableUploader(ncc, sched, segment_size=4096)
        done = {}

        def driver():
            yield sim.timeout(1.0)
            done["state"] = yield from up.upload("f.bit", blob, "tftp")

        sim.process(driver())
        sim.run(until=400.0)
        st = done["state"]
        assert st.finished
        assert st.resumes >= 1  # the blackout actually interrupted it
        assert gateway.uploads["f.bit"] == blob
        assert st.overhead_ratio < 1.5

        # the naive baseline on an identical world pays the full file again
        sim2, ncc2, gateway2, sched2 = ground_segment(outages=outages)
        naive = {}

        def naive_driver():
            yield sim2.timeout(1.0)
            naive["bytes"] = yield from restart_from_zero_upload(
                ncc2, "f.bit", blob, "tftp", scheduler=sched2
            )

        sim2.process(naive_driver())
        sim2.run(until=400.0)
        assert naive["bytes"] >= 2 * len(blob)
        assert st.bytes_sent < naive["bytes"]

    def test_upload_waits_for_first_contact_window(self):
        sim, ncc, gateway, sched = ground_segment(windows=((30.0, 500.0),))
        up = ResumableUploader(ncc, sched, segment_size=4096)
        blob = b"q" * 4096
        done = {}

        def driver():
            done["state"] = yield from up.upload("f.bit", blob, "tftp")
            done["t"] = sim.now

        sim.process(driver())
        sim.run(until=600.0)
        assert done["state"].finished
        assert done["t"] > 30.0  # nothing moved before the pass rose
        assert gateway.uploads["f.bit"] == blob

    def test_no_further_contact_raises(self):
        from repro.robustness.dtn import TransferError

        sim, ncc, gateway, sched = ground_segment(windows=((1.0, 2.0),))
        up = ResumableUploader(ncc, sched, segment_size=512)
        outcome = {}

        def driver():
            yield sim.timeout(5.0)  # after the only window closed
            try:
                yield from up.upload("f.bit", b"z" * 4096, "tftp")
            except TransferError as exc:
                outcome["error"] = str(exc)

        sim.process(driver())
        sim.run(until=100.0)
        assert "no further contact" in outcome["error"]

    def test_journal_state_survives_requeue(self):
        """Re-uploading the same file reuses the journal; a changed blob
        invalidates the checkpoint."""
        sim, ncc, gateway, sched = ground_segment()
        up = ResumableUploader(ncc, sched, segment_size=4096)
        blob = b"a" * 8192

        def driver():
            yield from up.upload("f.bit", blob, "tftp")
            yield from up.upload("f.bit", blob, "tftp")  # idempotent repeat

        sim.process(driver())
        sim.run(until=300.0)
        st = up.journal["f.bit"]
        assert st.finished
        # a different blob under the same name resets the state
        st2 = TransferState.for_blob("f.bit", b"b" * 100, 4096)
        assert st2.crc32 != st.crc32
