"""Tests for the FDIR recovery-ladder arbiter.

Uses the traffic chaos world as the fixture (3 carriers, redundant
demod pairs, seeded library, watchdog, degraded-mode policy) but feeds
the health monitors synthetic diagnostics instead of running the DSP
chain, so each test exercises exactly one ladder decision.
"""

import pytest

from repro.robustness.fdir import DEFAULT_FALLBACKS, LADDER, FdirArbiter
from repro.robustness.fdir.chaos import build_traffic_world

pytestmark = pytest.mark.fdir

CLEAN = {
    "uw_metric": 0.95,
    "timing_lock": 0.031,
    "carrier_lock": 0.73,
    "snr_db": 11.0,
}
NOISE = {
    "uw_metric": 0.59,
    "timing_lock": 0.015,
    "carrier_lock": 0.16,
    "snr_db": -4.0,
}
ALL = [0, 1, 2]


@pytest.fixture
def world():
    return build_traffic_world(seed=7)


def feed(world, carrier, diag, n=1):
    for _ in range(n):
        world.bank.observe_burst(carrier, diag)


def trip(world, carrier, diag=None):
    feed(world, carrier, diag or NOISE, n=world.bank.thresholds.trip_count)
    assert world.bank.monitor(carrier).tripped


class TestLadder:
    def test_ladder_order(self):
        assert LADDER == ("reacquire", "reload", "fallback", "isolate")

    def test_patience_validation(self, world):
        with pytest.raises(ValueError):
            FdirArbiter(world.payload, world.bank, patience=0)

    def test_no_trip_no_action(self, world):
        for k in ALL:
            feed(world, k, CLEAN)
        assert world.arbiter.step(served=ALL) == []

    def test_first_rung_is_reacquire(self, world):
        trip(world, 1)
        done = world.arbiter.step(served=ALL)
        assert done == [(1, "reacquire")]

    def test_escalation_walks_the_ladder(self, world):
        """A persistent fault climbs reacquire -> reload -> fallback."""
        seen = []
        for _ in range(12):
            trip(world, 0)  # re-trip after each action resets streaks
            for k, a in world.arbiter.step(served=ALL):
                seen.append(a)
            if "fallback" in seen:
                break
        assert seen[:3] == ["reacquire", "reload", "fallback"]
        # the fallback actually swapped the personality
        assert world.payload.demods[0].loaded_design == "modem.tdma.robust"

    def test_cooldown_blocks_consecutive_actions(self, world):
        trip(world, 0)
        assert world.arbiter.step(served=ALL) == [(0, "reacquire")]
        trip(world, 0)
        # patience=2: the next two passes are cooldown
        assert world.arbiter.step(served=ALL) == []
        assert world.arbiter.step(served=ALL) == []
        assert world.arbiter.step(served=ALL) == [(0, "reload")]

    def test_recovery_resets_the_rung(self, world):
        trip(world, 2)
        world.arbiter.step(served=ALL)
        # the fault goes away: alarm clears after clear_count good bursts
        feed(world, 2, CLEAN, n=world.bank.thresholds.clear_count)
        assert not world.bank.monitor(2).tripped
        world.arbiter.step(served=ALL)
        assert world.arbiter.recoveries
        # a later fault starts from the bottom again
        trip(world, 2)
        done = world.arbiter.step(served=ALL)
        assert done == [(2, "reacquire")]

    def test_stale_trip_without_fresh_bad_burst_waits(self, world):
        trip(world, 0)
        world.arbiter.step(served=ALL)
        world.arbiter.step(served=ALL)
        world.arbiter.step(served=ALL)  # cooldown drained
        feed(world, 0, CLEAN)  # most recent burst is fine
        assert world.arbiter.step(served=ALL) == []


class TestGuards:
    def test_common_mode_veto_freezes_ladder(self, world):
        for k in ALL:
            trip(world, k)
        assert world.bank.common_mode(among=ALL)
        assert world.arbiter.step(served=ALL) == []

    def test_permanent_fault_jumps_to_isolate(self, world):
        pair = world.payload.demods[1]
        pair.mark_unit_failed(pair.active)
        trip(world, 1, diag={"equipment_failed": "latch-up"})
        done = world.arbiter.step(served=ALL)
        assert done == [(1, "isolate")]
        assert pair.active is pair.spare
        assert pair.operational

    def test_shed_carriers_are_not_judged(self, world):
        trip(world, 2)
        assert world.arbiter.step(served=[0, 1]) == []


class TestTerminal:
    def _kill_both(self, world, k):
        pair = world.payload.demods[k]
        pair.mark_unit_failed(pair.primary)
        pair.mark_unit_failed(pair.spare)
        return pair

    def test_double_fault_latches_safe_mode_and_sheds(self, world):
        pair = self._kill_both(world, 0)
        trip(world, 0, diag={"equipment_failed": "terminal"})
        done = world.arbiter.step(served=ALL)
        assert done == [(0, "isolate")]
        assert pair.terminal
        assert pair.name in world.watchdog.safe_mode
        assert world.watchdog.safe_mode[pair.name].get("terminal") is True
        assert 0 in world.policy.terminal
        assert 0 not in world.policy.active
        assert ("terminal" in {a[2] for a in world.arbiter.actions})

    def test_terminal_carrier_is_never_acted_on_again(self, world):
        self._kill_both(world, 0)
        trip(world, 0, diag={"equipment_failed": "terminal"})
        world.arbiter.step(served=ALL)
        n = len(world.arbiter.actions)
        trip(world, 0, diag={"equipment_failed": "terminal"})
        assert world.arbiter.step(served=ALL) == []
        assert len(world.arbiter.actions) == n


class TestDecoder:
    def _crc_storm(self, world, served=ALL):
        """Clean demod metrics but failing CRCs on every served carrier."""
        for _ in range(world.bank.thresholds.trip_count + 1):
            for k in served:
                world.bank.observe_burst(k, CLEAN)
                world.bank.observe_decode(k, False)

    def test_crc_storm_reloads_decoder(self, world):
        self._crc_storm(world)
        done = world.arbiter.step(served=ALL)
        assert (-1, "decoder_reload") in done

    def test_single_carrier_crc_failures_do_not_blame_decoder(self, world):
        for _ in range(6):
            for k in ALL:
                world.bank.observe_burst(k, CLEAN)
            world.bank.observe_decode(0, False)
            world.bank.observe_decode(1, True)
            world.bank.observe_decode(2, True)
        done = world.arbiter.step(served=ALL)
        assert not any(c == -1 for c, _ in done)

    def test_decoder_fallback_after_reload_fails_to_help(self, world):
        arb = FdirArbiter(
            world.payload,
            world.bank,
            watchdog=world.watchdog,
            policy=world.policy,
            fallbacks={**DEFAULT_FALLBACKS, "decod.conv": "decod.turbo"},
            patience=1,
        )
        self._crc_storm(world)
        assert (-1, "decoder_reload") in arb.step(served=ALL)
        arb.step(served=ALL)  # cooldown
        self._crc_storm(world)
        done = arb.step(served=ALL)
        assert (-1, "decoder_fallback") in done
        assert world.payload.decoder.loaded_design == "decod.turbo"


class TestTelemetry:
    def test_status_shape(self, world):
        trip(world, 1)
        world.arbiter.step(served=ALL)
        st = world.arbiter.status()
        assert st["frame"] == 1
        assert st["actions"] == 1
        assert st["tripped"] == [1]
        assert st["rungs"] == {1: "reload"}

    def test_obc_fdir_telecommand(self, world):
        from repro.core.obc import Telecommand

        obc = world.payload.obc
        tm = obc.execute(Telecommand(1, "fdir"))
        assert not tm.success  # nothing attached yet
        obc.attach_fdir(world.arbiter, world.policy)
        tm = obc.execute(Telecommand(2, "fdir"))
        assert tm.success
        assert tm.payload["arbiter"]["frame"] == 0
        assert tm.payload["degraded"]["active"] == ALL
        assert "watchdog" in tm.payload
