"""End-to-end overload control through NCC -> link -> gateway -> payload.

Exercises the threaded-through pieces: bounded link/TMTC/UDP buffers
with backpressure, gateway-side deadline and admission shedding,
campaign-level deadline budgets, bounded switch queues and the CoDel
burst queues on the payload.
"""

import json

import pytest

from repro.core import PayloadConfig, RegenerativePayload
from repro.ncc import BoundedUploadStore, NetworkControlCenter, SatelliteGateway
from repro.net import Link, Node
from repro.net.tmtc import TmtcLayer
from repro.net.udp import UdpSocket
from repro.robustness.overload import AdmissionController, Deadline, DeadlineExceeded
from repro.sim import Simulator

pytestmark = pytest.mark.overload

GEOM = (8, 8, 32)
SMALL = dict(fpga_rows=GEOM[0], fpga_cols=GEOM[1], fpga_bits_per_clb=GEOM[2])


def linked_pair(**link_kw):
    sim = Simulator()
    ground = Node(sim, "ncc", 1)
    space = Node(sim, "sat", 2)
    link = Link(sim, delay=0.25, rate_bps=1e6, **link_kw)
    link.attach(ground)
    link.attach(space)
    return sim, ground, space, link


def build_world(admission=None):
    sim, ground, space, link = linked_pair()
    payload = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
    payload.boot(modem="modem.cdma")
    gw = SatelliteGateway(space, payload, admission=admission)
    ncc = NetworkControlCenter(ground, payload.registry, 2, GEOM)
    return sim, payload, gw, ncc


def drive(sim, gen, until=1e6):
    box = {}

    def main():
        try:
            box["value"] = yield from gen
        except BaseException as exc:  # noqa: BLE001
            box["error"] = exc

    sim.process(main())
    sim.run(until=until)
    return box


class TestLinkBacklogBound:
    def test_burst_past_backlog_drops_at_transmitter(self):
        sim, ground, space, link = linked_pair(max_backlog_frames=4)
        for _ in range(10):
            ground.send_frame(b"x" * 100)
        assert link.stats["backlog_dropped"] == 6
        assert link.backlog_of(ground) == 4
        assert link.backpressure(ground)
        sim.run(until=10.0)
        # backlog drains as serialization completes
        assert link.backlog_of(ground) == 0
        assert not link.backpressure(ground)

    def test_directions_are_independent(self):
        sim, ground, space, link = linked_pair(max_backlog_frames=2)
        ground.send_frame(b"a" * 50)
        ground.send_frame(b"b" * 50)
        assert link.backpressure(ground)
        assert not link.backpressure(space)
        space.send_frame(b"c" * 50)
        assert link.stats["backlog_dropped"] == 0


class TestTmtcBacklogBound:
    def test_ad_backlog_refuses_whole_sdu(self):
        sim, ground, space, _ = linked_pair()
        tx = TmtcLayer(ground, max_backlog_frames=4, window=1, rto=5.0)
        TmtcLayer(space)
        # window=1 means only one frame in flight; the rest backlogs
        assert tx.send_sdu(b"a" * 100, vc=0)
        for _ in range(4):
            tx.send_sdu(b"b" * 100, vc=0)
        assert tx.backpressure(vc=0)
        assert not tx.send_sdu(b"c" * 100, vc=0)
        assert tx.stats["backlog_dropped"] >= 1

    def test_reassembly_overflow_bounded(self):
        sim, ground, space, _ = linked_pair()
        tx = TmtcLayer(ground)
        rx = TmtcLayer(space, max_reassembly_bytes=512)
        got = []
        rx.register_handler(0, got.append)
        # a 4 KiB SDU exceeds the 512 B reassembly bound on the receiver
        tx.send_sdu(b"z" * 4096, vc=0, mode="BD")
        sim.run(until=30.0)
        assert got == []
        assert rx.stats["reassembly_overflow"] >= 1


class TestUdpRecvBound:
    def test_tail_drop_past_capacity(self):
        sim, ground, space, _ = linked_pair()
        server = UdpSocket(space.ip, 5000, recv_capacity=3)
        client = UdpSocket(ground.ip, 5001)
        for i in range(8):
            client.sendto(bytes([i]), 2, 5000)
        sim.run(until=10.0)
        assert server.pending() == 3
        assert server.dropped == 5


class TestGatewayShedding:
    def test_expired_deadline_shed_not_executed(self):
        sim, payload, gw, ncc = build_world()
        box = {}

        def main():
            # a deadline far shorter than the 0.5 s GEO round trip:
            # the TC arrives on board already expired
            d = Deadline.after(sim.now, 0.1)
            try:
                yield from ncc.send_telecommand(
                    "noop", {}, deadline=d, cls="p0"
                )
            except DeadlineExceeded as exc:
                box["shed"] = exc

        sim.process(main())
        sim.run(until=300.0)
        assert gw.stats["shed_expired"] >= 1
        assert gw.stats["executed"] == 0
        assert "shed" in box  # ground side also gave up at its budget
        assert ncc.stats["deadline_shed"] >= 1

    def test_shed_reply_not_dedup_cached(self):
        sim, payload, gw, ncc = build_world()
        sock = UdpSocket(ncc.node.ip)
        msg = {"tc_id": 77, "action": "noop", "args": {}, "deadline": 0.0}
        sock.sendto(json.dumps(msg).encode(), 2, 2001)
        sim.run(until=5.0)
        assert gw.stats["shed_expired"] == 1
        assert 77 not in gw.dedup

    def test_admission_sheds_low_priority_class(self):
        clockbox = {}
        sim, ground, space, link = linked_pair()
        payload = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
        payload.boot(modem="modem.cdma")
        admission = AdmissionController(lambda: sim.now, capacity=100.0)
        admission.shed("p2")
        gw = SatelliteGateway(space, payload, admission=admission)
        ncc = NetworkControlCenter(ground, payload.registry, 2, GEOM)
        replies = {}

        def main():
            replies["p2"] = yield from ncc.send_telecommand("noop", {}, cls="p2")
            replies["p0"] = yield from ncc.send_telecommand("noop", {}, cls="p0")

        sim.process(main())
        sim.run(until=300.0)
        assert replies["p2"]["success"] is False
        assert replies["p2"]["payload"]["shed"] is True
        assert gw.stats["shed_admission"] >= 1
        # p0 is never shed: it proceeds to execution (unknown action ->
        # rejected by the OBC, but it *reached* the OBC)
        assert gw.stats["shed_admission"] == 1

    def test_untagged_tc_unaffected_by_admission(self):
        sim, payload, gw, ncc = build_world(
            admission=AdmissionController(lambda: 0.0, capacity=0.0)
        )
        box = drive(sim, ncc.send_telecommand("noop", {}), until=300.0)
        # no cls tag -> no admission gate; the TC reached the OBC
        assert gw.stats["shed_admission"] == 0
        assert gw.stats["tc_received"] >= 1


class TestCampaignDeadline:
    def test_campaign_inside_budget_succeeds(self):
        sim, payload, gw, ncc = build_world()
        box = drive(
            sim,
            ncc.reconfigure_equipment(
                "demod0", "modem.tdma", protocol="tftp",
                deadline_budget=3600.0, priority="p0",
            ),
            until=4000.0,
        )
        assert "error" not in box
        assert box["value"].success

    def test_campaign_with_tiny_budget_sheds(self):
        sim, payload, gw, ncc = build_world()
        box = drive(
            sim,
            ncc.reconfigure_equipment(
                "demod0", "modem.tdma", protocol="tftp",
                deadline_budget=0.5, priority="p0",
            ),
            until=4000.0,
        )
        assert isinstance(box.get("error"), DeadlineExceeded)
        # the reconfigure TC never executed on board
        assert payload.demods[0].loaded_design != "modem.tdma"


class TestBoundedUploadStore:
    def test_evicts_oldest_and_counts(self):
        store = BoundedUploadStore(max_files=2, history_len=3)
        store["a"] = b"1"
        store["b"] = b"22"
        store["c"] = b"333"
        assert set(store) == {"b", "c"}
        assert store.evicted == 1
        assert list(store.history) == [("a", 1), ("b", 2), ("c", 3)]
        store["d"] = b"4444"
        assert store.history_evicted == 1

    def test_gateway_uses_bounded_store_by_default(self):
        sim, payload, gw, ncc = build_world()
        assert isinstance(gw.uploads, BoundedUploadStore)


class TestPayloadQueues:
    def test_packet_switch_bounded(self):
        from repro.core.payload import PacketSwitch

        sw = PacketSwitch(num_ports=1, queue_capacity=2)
        assert sw.route(b"\x00aa") == 0
        assert sw.route(b"\x00bb") == 0
        assert sw.backpressure(0)
        assert sw.route(b"\x00cc") is None
        assert sw.queue_dropped == 1
        assert sw.routed == 2
        sw.drain(0)
        assert not sw.backpressure(0)

    def test_burst_queues_attach_offer_drain(self):
        sim = Simulator()
        payload = RegenerativePayload(PayloadConfig(num_carriers=2, **SMALL))
        payload.attach_burst_queues(lambda: sim.now, capacity=2)
        assert payload.offer_burst(0, "r1")
        assert payload.offer_burst(0, "r2")
        assert not payload.offer_burst(0, "r3")  # backpressure
        assert payload.next_burst(0) == "r1"
        assert payload.next_burst(1) is None
        assert payload.burst_queues[0].stats()["dropped"] == 1

    def test_burst_queue_requires_attachment(self):
        payload = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
        with pytest.raises(RuntimeError):
            payload.offer_burst(0, "r")
