"""Unit tests for the demand-plane overload-control primitives."""

import math

import pytest

from repro.ncc.traffic import ServiceMix
from repro.robustness.overload import (
    AdmissionController,
    BoundedQueue,
    BrownoutLadder,
    CircuitBreaker,
    CoDelQueue,
    Deadline,
    DeadlineExceeded,
    TokenBucket,
)

pytestmark = pytest.mark.overload


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# ---------------------------------------------------------------- deadline
class TestDeadline:
    def test_after_and_remaining(self):
        d = Deadline.after(10.0, 5.0)
        assert d.expires_at == 15.0
        assert d.remaining(12.0) == pytest.approx(3.0)
        assert not d.expired(14.999)
        assert d.expired(15.0)

    def test_check_raises_with_context(self):
        d = Deadline.after(0.0, 1.0)
        assert d.check(0.5, "hop") == pytest.approx(0.5)
        with pytest.raises(DeadlineExceeded) as ei:
            d.check(2.0, "gateway")
        assert ei.value.where == "gateway"
        assert ei.value.deadline == 1.0
        assert ei.value.now == 2.0

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0, 0.0)
        with pytest.raises(ValueError):
            Deadline.after(0.0, -1.0)


# ------------------------------------------------------------ token bucket
class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clk = FakeClock()
        b = TokenBucket(rate=1.0, burst=3.0, clock=clk)
        assert b.try_take() and b.try_take() and b.try_take()
        assert not b.try_take()

    def test_refills_at_rate_capped_at_burst(self):
        clk = FakeClock()
        b = TokenBucket(rate=2.0, burst=4.0, clock=clk)
        for _ in range(4):
            assert b.try_take()
        clk.advance(1.0)  # +2 tokens
        assert b.tokens == pytest.approx(2.0)
        clk.advance(100.0)
        assert b.tokens == pytest.approx(4.0)  # capped

    def test_set_rate_keeps_tokens_but_caps(self):
        clk = FakeClock()
        b = TokenBucket(rate=1.0, burst=10.0, clock=clk)
        b.set_rate(0.5, burst=2.0)
        assert b.tokens == pytest.approx(2.0)
        assert b.rate == 0.5

    def test_validation(self):
        clk = FakeClock()
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1.0, clock=clk)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0, clock=clk)


# --------------------------------------------------------------- admission
class TestAdmissionController:
    def test_nominal_load_never_rejected(self):
        clk = FakeClock()
        ac = AdmissionController(clk, capacity=10.0)
        # offered exactly at the per-class share for many seconds
        for _ in range(100):
            clk.advance(0.3)  # p0 share ~3.33/s => 1 req / 0.3 s
            assert ac.admit("p0")
        assert ac.rejected["p0"] == 0

    def test_overload_rejected_per_class(self):
        clk = FakeClock()
        ac = AdmissionController(clk, capacity=3.0, burst_seconds=1.0)
        rejected = 0
        for _ in range(50):
            if not ac.admit("p2"):
                rejected += 1
        assert rejected > 0
        # other classes untouched by p2's burst
        assert ac.admit("p0")

    def test_shed_class_rejected_at_door(self):
        clk = FakeClock()
        ac = AdmissionController(clk, capacity=100.0)
        ac.shed("p2")
        assert ac.is_shed("p2")
        assert not ac.admit("p2")
        assert ac.shed_closed["p2"] == 1
        ac.restore("p2")
        assert ac.admit("p2")

    def test_unknown_class_rejected_not_crash(self):
        clk = FakeClock()
        ac = AdmissionController(clk, capacity=10.0)
        assert not ac.admit("p9")

    def test_set_capacity_rescales_buckets(self):
        clk = FakeClock()
        ac = AdmissionController(clk, capacity=9.0)
        r0 = ac.buckets["p0"].rate
        ac.set_capacity(3.0)
        assert ac.buckets["p0"].rate == pytest.approx(r0 / 3.0)
        with pytest.raises(ValueError):
            ac.set_capacity(-1.0)

    def test_from_service_mix_shares(self):
        clk = FakeClock()
        mix = ServiceMix(year=0.0, voice=0.5, video=0.3, text=0.2, total_mbps=2.0)
        ac = AdmissionController.from_service_mix(mix, 100.0, clk)
        assert ac.shares == pytest.approx({"p0": 0.5, "p1": 0.3, "p2": 0.2})

    def test_share_validation(self):
        clk = FakeClock()
        with pytest.raises(ValueError):
            AdmissionController(clk, 1.0, shares={"bogus": 1.0})
        with pytest.raises(ValueError):
            AdmissionController(clk, 1.0, shares={"p0": 0.9, "p1": 0.9})
        with pytest.raises(ValueError):
            AdmissionController(clk, 1.0, shares={"p0": -0.1})

    def test_stats_shape(self):
        clk = FakeClock()
        ac = AdmissionController(clk, capacity=10.0)
        ac.admit("p0")
        s = ac.stats()
        assert s["capacity"] == 10.0
        assert s["admitted"]["p0"] == 1
        assert s["closed"] == []


# ------------------------------------------------------------------ queues
class TestBoundedQueue:
    def test_offer_poll_fifo(self):
        q = BoundedQueue(capacity=3)
        assert q.offer("a") and q.offer("b")
        assert q.poll() == "a"
        assert q.poll() == "b"
        assert q.poll() is None

    def test_full_backpressure_and_drop_counter(self):
        q = BoundedQueue(capacity=2)
        assert q.offer(1) and q.offer(2)
        assert q.full
        assert not q.offer(3)
        assert q.dropped == 1
        assert q.depth == 2

    def test_sojourn_uses_clock(self):
        clk = FakeClock()
        q = BoundedQueue(capacity=4, clock=clk)
        q.offer("x")
        clk.advance(2.5)
        assert q.head_sojourn() == pytest.approx(2.5)
        item, sojourn = q.poll_with_sojourn()
        assert item == "x" and sojourn == pytest.approx(2.5)

    def test_drain_and_stats(self):
        q = BoundedQueue(capacity=4)
        for i in range(3):
            q.offer(i)
        assert q.drain() == [0, 1, 2]
        s = q.stats()
        assert s["served"] == 3 and s["depth"] == 0 and s["max_depth"] == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue(capacity=0)


class TestCoDelQueue:
    def test_under_target_never_sheds(self):
        clk = FakeClock()
        q = CoDelQueue(clk, capacity=16, target=0.5, interval=2.0)
        for i in range(10):
            q.offer(i)
            clk.advance(0.1)  # sojourn stays < target
            assert q.poll() == i
        assert q.shed == 0

    def test_standing_queue_sheds_from_head(self):
        clk = FakeClock()
        q = CoDelQueue(clk, capacity=64, target=0.5, interval=1.0)
        # build a standing queue: items age well past target
        for i in range(40):
            q.offer(i)
            clk.advance(0.2)
        # serve slowly; sojourns are seconds >> target, so after one
        # interval above target the control law must start shedding
        shed_before = q.shed
        served = []
        for _ in range(30):
            got = q.poll_with_sojourn()
            if got is not None:
                served.append(got[0])
            clk.advance(0.3)
        assert q.shed > shed_before
        # survivors are still in FIFO order
        assert served == sorted(served)

    def test_recovery_resets_dropping_state(self):
        clk = FakeClock()
        q = CoDelQueue(clk, capacity=64, target=0.5, interval=1.0)
        for i in range(20):
            q.offer(i)
            clk.advance(0.5)
        while q.depth:
            q.poll()
            clk.advance(0.2)
        # fresh traffic with low sojourn: no shedding
        shed = q.shed
        q.offer("fresh")
        clk.advance(0.01)
        assert q.poll() == "fresh"
        assert q.shed == shed
        assert q.stats()["dropping"] is False

    def test_shed_rate_follows_sqrt_law(self):
        # drop_next spacing must shrink as drop_count grows
        clk = FakeClock()
        q = CoDelQueue(clk, capacity=4, target=0.1, interval=1.0)
        assert q.interval / math.sqrt(4) < q.interval / math.sqrt(1)

    def test_param_validation(self):
        clk = FakeClock()
        with pytest.raises(ValueError):
            CoDelQueue(clk, target=0.0)
        with pytest.raises(ValueError):
            CoDelQueue(clk, interval=-1.0)


# --------------------------------------------------------- circuit breaker
class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        clk = FakeClock()
        br = CircuitBreaker(clk, failure_threshold=3, cooldown=10.0)
        for _ in range(2):
            br.record_failure()
        assert br.state == CircuitBreaker.CLOSED
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        assert not br.allow()
        assert br.fast_rejects == 1

    def test_success_resets_consecutive_count(self):
        clk = FakeClock()
        br = CircuitBreaker(clk, failure_threshold=3)
        br.record_failure()
        br.record_failure()
        br.record_success()
        br.record_failure()
        br.record_failure()
        assert br.state == CircuitBreaker.CLOSED

    def test_half_open_probe_then_close(self):
        clk = FakeClock()
        br = CircuitBreaker(
            clk, failure_threshold=1, cooldown=5.0, half_open_probes=2
        )
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        clk.advance(5.0)
        assert br.state == CircuitBreaker.HALF_OPEN
        assert br.allow() and br.allow()
        assert not br.allow()  # probe budget spent
        br.record_success()
        br.record_success()
        assert br.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        clk = FakeClock()
        br = CircuitBreaker(clk, failure_threshold=1, cooldown=5.0)
        br.record_failure()
        clk.advance(5.0)
        assert br.allow()
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        assert br.trips == 2
        # cooldown restarts from the re-open
        clk.advance(4.0)
        assert br.state == CircuitBreaker.OPEN
        clk.advance(1.0)
        assert br.state == CircuitBreaker.HALF_OPEN


# ---------------------------------------------------------------- brownout
class TestBrownoutLadder:
    def make(self, clk, **kw):
        kw.setdefault("shed_threshold", 0.8)
        kw.setdefault("restore_threshold", 0.5)
        kw.setdefault("rung_step", 0.1)
        kw.setdefault("dwell", 2.0)
        return BrownoutLadder(clk, **kw)

    def test_sheds_lowest_priority_first(self):
        clk = FakeClock()
        ladder = self.make(clk)
        assert ladder.update(0.85) == [("shed", "p2")]
        assert ladder.shed_classes == ["p2"]
        assert ladder.update(0.95) == [("shed", "p1")]
        assert ladder.shed_classes == ["p2", "p1"]

    def test_deep_spike_sheds_in_order_one_update(self):
        clk = FakeClock()
        ladder = self.make(clk)
        actions = ladder.update(2.0 if False else 1.0)
        assert actions == [("shed", "p2"), ("shed", "p1")]

    def test_restore_requires_hysteresis_and_dwell(self):
        clk = FakeClock()
        ladder = self.make(clk)
        ladder.update(1.0)  # both shed
        # below p2 restore (0.5) but dwell not served yet
        assert ladder.update(0.3) == []
        clk.advance(1.0)
        assert ladder.update(0.3) == []
        clk.advance(1.0)
        # dwell (2 s) served for both rungs -> both restore
        acts = ladder.update(0.3)
        assert ("restore", "p2") in acts and ("restore", "p1") in acts
        assert ladder.level() == 0

    def test_pressure_bounce_resets_dwell(self):
        clk = FakeClock()
        ladder = self.make(clk)
        ladder.update(0.85)  # p2 shed
        ladder.update(0.3)  # dwell starts
        clk.advance(1.5)
        ladder.update(0.7)  # bounce above restore threshold: dwell resets
        clk.advance(1.5)
        assert ladder.update(0.3) == []  # dwell restarted, not served
        clk.advance(2.0)
        assert ladder.update(0.3) == [("restore", "p2")]

    def test_no_flapping_counters(self):
        clk = FakeClock()
        ladder = self.make(clk)
        # oscillate just below shed and just above restore: no actions
        for _ in range(50):
            assert ladder.update(0.75) == []
            clk.advance(0.1)
        assert ladder.shed_events == 0 and ladder.restore_events == 0

    def test_validation(self):
        clk = FakeClock()
        with pytest.raises(ValueError):
            BrownoutLadder(clk, rungs=())
        with pytest.raises(ValueError):
            BrownoutLadder(clk, shed_threshold=0.5, restore_threshold=0.6)
