"""Tests for the safe-mode watchdog state machine and its OBC wiring."""

import numpy as np
import pytest

from repro import obs
from repro.core import PayloadConfig, RegenerativePayload
from repro.core.obc import Telecommand
from repro.robustness import (
    DEGRADED,
    NOMINAL,
    SAFE_MODE,
    SafeModeWatchdog,
    WatchdogProcess,
)
from repro.sim import Simulator

GEOM = (8, 8, 32)


def make_payload(threshold=2, store_golden=True):
    payload = RegenerativePayload(
        PayloadConfig(
            num_carriers=1,
            fpga_rows=GEOM[0],
            fpga_cols=GEOM[1],
            fpga_bits_per_clb=GEOM[2],
        )
    )
    payload.boot(modem="modem.cdma", decoder="decod.conv")
    golden = {"demod0": "modem.cdma", payload.decoder.name: "decod.conv"}
    wd = payload.obc.arm_watchdog(golden, threshold=threshold)
    if store_golden:
        for fn in set(golden.values()):
            payload.obc.library.store(
                payload.registry.get(fn).bitstream_for(*GEOM)
            )
    return payload, wd


class TestStateMachine:
    def test_threshold_validation(self):
        payload, _ = make_payload()
        with pytest.raises(ValueError):
            SafeModeWatchdog(payload.obc, {}, threshold=0)

    def test_nominal_degraded_safe_mode_progression(self):
        payload, wd = make_payload(threshold=3)
        assert wd.state == NOMINAL
        assert wd.record_failure("demod0") is None
        assert wd.state_of("demod0") == DEGRADED
        assert wd.state == DEGRADED
        assert wd.record_failure("demod0") is None
        info = wd.record_failure("demod0")  # third consecutive: trips
        assert info is not None and info["loaded"]
        assert wd.state_of("demod0") == SAFE_MODE
        assert wd.state == SAFE_MODE

    def test_success_resets_the_streak(self):
        payload, wd = make_payload(threshold=2)
        wd.record_failure("demod0")
        wd.record_success("demod0")  # streak broken
        assert wd.record_failure("demod0") is None  # back to 1, not 2
        assert wd.state_of("demod0") == DEGRADED

    def test_streaks_are_per_equipment(self):
        payload, wd = make_payload(threshold=2)
        wd.record_failure("demod0")
        assert wd.record_failure(payload.decoder.name) is None
        assert wd.state == DEGRADED  # neither unit crossed its threshold

    def test_validated_success_exits_safe_mode(self):
        payload, wd = make_payload(threshold=1)
        wd.record_failure("demod0")
        assert "demod0" in wd.safe_mode
        wd.record_success("demod0")
        assert "demod0" not in wd.safe_mode
        assert wd.state_of("demod0") == NOMINAL

    def test_suspend_excludes_unit_from_escalation(self):
        payload, wd = make_payload(threshold=1)
        wd.suspend("demod0")
        assert wd.record_failure("demod0") is None
        assert wd.state_of("demod0") == NOMINAL
        wd.resume("demod0")
        assert wd.record_failure("demod0") is not None

    def test_status_summary(self):
        payload, wd = make_payload(threshold=2)
        wd.record_failure("demod0")
        st = wd.status()
        assert st["state"] == DEGRADED
        assert st["failures"] == {"demod0": 1}
        assert st["safe_mode"] == []
        assert st["threshold"] == 2


class TestGoldenImageRecovery:
    def test_golden_loaded_from_library(self):
        payload, wd = make_payload(threshold=1)
        eq = payload.demods[0]
        eq.unload()
        info = wd.record_failure("demod0")
        assert info["loaded"] and info["source"] == "library"
        assert eq.loaded_design == "modem.cdma"
        assert eq.operational

    def test_registry_render_fallback_when_library_copy_missing(self):
        payload, wd = make_payload(threshold=1, store_golden=False)
        eq = payload.demods[0]
        eq.unload()
        info = wd.record_failure("demod0")
        assert info["loaded"] and info["source"] == "registry"
        assert eq.operational

    def test_registry_render_fallback_when_library_copy_corrupted(self):
        payload, wd = make_payload(threshold=1)
        # corrupt the stored golden image in on-board memory (raw bytes
        # mutated under the container CRC -> fetch raises ValueError)
        mem = payload.obc.library.memory
        name = "modem.cdma@1.bit"
        raw = bytearray(mem.load(name))
        raw[len(raw) // 2] ^= 0xFF
        mem.delete(name)
        mem.store(name, bytes(raw))
        info = wd.record_failure("demod0")
        assert info["loaded"] and info["source"] == "registry"
        assert payload.demods[0].operational

    def test_no_golden_designated_is_reported(self):
        payload, wd = make_payload(threshold=1)
        wd.golden.pop("demod0")
        info = wd.record_failure("demod0")
        assert not info["loaded"]
        assert info["error"] == "no golden image designated"

    def test_probe_counters(self):
        with obs.session() as (reg, _):
            payload, wd = make_payload(threshold=1)
            wd.record_failure("demod0")
            wd.record_success("demod0")
            assert reg.value("core.watchdog.failures_observed") == 1
            assert reg.value("core.watchdog.safe_mode_entries") == 1
            assert reg.value("core.watchdog.golden_loads") == 1
            assert reg.value("core.watchdog.safe_mode_exits") == 1


class TestObcTelemetry:
    def test_reconfigure_telemetry_reports_watchdog_state(self):
        payload, wd = make_payload(threshold=2)
        payload.obc.library.store(
            payload.registry.get("modem.tdma").bitstream_for(*GEOM)
        )
        rng = np.random.default_rng(0)

        def corrupt(fpga):
            fpga.upset_bits(rng.integers(0, fpga.num_config_bits, size=16))

        payload.obc.manager.default_corrupt_hook = corrupt
        tc = Telecommand(1, "reconfigure", {"equipment": "demod0", "function": "modem.tdma"})
        tm1 = payload.obc.execute(tc)
        assert not tm1.success
        assert tm1.payload["watchdog_state"] == DEGRADED
        assert tm1.payload["safe_mode"] is False
        tm2 = payload.obc.execute(
            Telecommand(2, "reconfigure", {"equipment": "demod0", "function": "modem.tdma"})
        )
        assert not tm2.success
        assert tm2.payload["safe_mode"] is True
        assert tm2.payload["watchdog_state"] == SAFE_MODE
        # the safe-mode entry re-loaded the golden image: telemetry
        # reports the personality actually on board now
        assert tm2.payload["final_function"] == "modem.cdma"
        assert payload.demods[0].operational

    def test_status_telemetry_includes_watchdog(self):
        payload, wd = make_payload()
        wd.record_failure("demod0")
        tm = payload.obc.execute(Telecommand(1, "status", {}))
        assert tm.success
        assert tm.payload["watchdog"]["state"] == DEGRADED

    def test_unarmed_obc_reports_no_safe_mode(self):
        payload = RegenerativePayload(
            PayloadConfig(
                num_carriers=1,
                fpga_rows=GEOM[0],
                fpga_cols=GEOM[1],
                fpga_bits_per_clb=GEOM[2],
            )
        )
        payload.boot(modem="modem.cdma")
        payload.obc.library.store(
            payload.registry.get("modem.tdma").bitstream_for(*GEOM)
        )
        tm = payload.obc.execute(
            Telecommand(1, "reconfigure", {"equipment": "demod0", "function": "modem.tdma"})
        )
        assert tm.success
        assert tm.payload["safe_mode"] is False
        assert "watchdog" not in payload.obc.execute(Telecommand(2, "status", {})).payload


class TestWatchdogProcess:
    def test_period_validation(self):
        payload, wd = make_payload()
        with pytest.raises(ValueError):
            WatchdogProcess(Simulator(), wd, period=0.0)

    def test_dark_equipment_escalates_without_ground_contact(self):
        # A payload left non-operational (e.g. aborted load) must reach
        # the golden image purely from the on-board health monitor.
        payload, wd = make_payload(threshold=3)
        sim = Simulator()
        proc = WatchdogProcess(sim, wd, period=10.0)
        payload.demods[0].unload()
        sim.run(until=35.0)  # 3 checks at t=10, 20, 30
        assert proc.checks == 3
        assert wd.state_of("demod0") == SAFE_MODE
        assert payload.demods[0].operational  # golden image restored

    def test_healthy_payload_never_escalates(self):
        payload, wd = make_payload(threshold=1)
        sim = Simulator()
        WatchdogProcess(sim, wd, period=5.0)
        sim.run(until=100.0)
        assert wd.state == NOMINAL

    def test_monitor_skips_safe_mode_and_suspended_units(self):
        payload, wd = make_payload(threshold=1)
        sim = Simulator()
        WatchdogProcess(sim, wd, period=5.0)
        payload.demods[0].unload()
        wd.suspend("demod0")
        sim.run(until=50.0)
        assert "demod0" not in wd.safe_mode  # suspended: left to its owner
        wd.resume("demod0")
        sim.run(until=60.0)
        assert "demod0" in wd.safe_mode
        entries_after_first = len(wd.entries)
        sim.run(until=120.0)  # already latched: no re-entry spam
        assert len(wd.entries) == entries_after_first
