"""Tests for the link-budget-driven degraded-mode policy."""

import pytest

from repro.core.linkbudget import regenerative_margin_db, shared_uplink_cn
from repro.dsp.tdma import FramePlan
from repro.robustness.fdir.degraded import DegradedModePolicy

pytestmark = pytest.mark.fdir


def make_policy(**kw):
    plan = FramePlan(num_carriers=3, slots_per_frame=4)
    for k in range(3):
        plan.assign(f"term-{k}a", k, 0)
        plan.assign(f"term-{k}b", k, 1)
    defaults = dict(
        down_cn_db=16.0,
        required_ber=1e-4,
        shed_margin_db=0.0,
        restore_margin_db=2.0,
        min_active=1,
    )
    defaults.update(kw)
    return plan, DegradedModePolicy(plan, **defaults)


class TestValidation:
    def test_hysteresis_band_must_be_ordered(self):
        plan = FramePlan(num_carriers=2, slots_per_frame=2)
        with pytest.raises(ValueError):
            DegradedModePolicy(plan, shed_margin_db=1.0, restore_margin_db=0.0)

    def test_priorities_must_be_permutation(self):
        plan = FramePlan(num_carriers=3, slots_per_frame=2)
        with pytest.raises(ValueError):
            DegradedModePolicy(plan, priorities=[0, 0, 1])

    def test_min_active_range(self):
        plan = FramePlan(num_carriers=3, slots_per_frame=2)
        with pytest.raises(ValueError):
            DegradedModePolicy(plan, min_active=4)


class TestShedRestore:
    def test_clear_sky_is_a_noop(self):
        _, pol = make_policy()
        assert pol.update(12.0) == []
        assert pol.active_carriers == [0, 1, 2]

    def test_deep_fade_sheds_by_priority(self):
        plan, pol = make_policy()
        actions = pol.update(6.0)  # margin ~ -2.4 dB
        # default priorities shed the highest index first
        assert actions == [("shed", 2), ("shed", 1)]
        assert pol.active_carriers == [0]
        # the shed carriers' slots were released
        assert plan.occupant(2, 0) is None
        assert plan.occupant(1, 0) is None
        assert plan.occupant(0, 0) == "term-0a"

    def test_shedding_concentrates_power_into_positive_margin(self):
        _, pol = make_policy()
        pol.update(6.0)
        assert pol.last_margin_db is not None
        assert pol.last_margin_db >= pol.shed_margin_db

    def test_restore_with_hysteresis(self):
        plan, pol = make_policy()
        pol.update(6.0)
        assert pol.active_carriers == [0]
        # fade gone: the per-carrier C/N the lone survivor now sees
        cn = shared_uplink_cn(12.0, 0.0, 3, 1)
        actions = pol.update(cn)
        assert ("restore", 1) in actions and ("restore", 2) in actions
        assert pol.active_carriers == [0, 1, 2]
        # assignments came back
        assert plan.occupant(1, 0) == "term-1a"
        assert plan.occupant(2, 1) == "term-2b"

    def test_marginal_clearing_does_not_restore(self):
        """Projected post-restore margin below the band: stay shed."""
        _, pol = make_policy()
        pol.update(6.0)
        # a C/N whose *projected* margin (one more carrier) is < 2 dB
        cn_req = 12.0 - regenerative_margin_db(12.0, 16.0, 1e-4)
        marginal = cn_req + 2.5  # fine for 1 carrier, not after dilution
        assert pol.update(marginal) == []
        assert pol.active_carriers == [0]

    def test_min_active_floor(self):
        _, pol = make_policy(min_active=2)
        pol.update(-20.0)  # hopeless fade
        assert len(pol.active_carriers) == 2

    def test_no_flapping_on_fluttering_fade(self):
        """A fade oscillating inside the hysteresis band causes at most
        one shed/restore cycle per carrier."""
        _, pol = make_policy()
        for cn in (8.0, 8.6, 8.0, 8.6, 8.0, 8.6):
            pol.update(cn)
        for k in range(3):
            assert pol.transitions_of(k) <= 2


class TestForceShed:
    def test_force_shed_is_permanent_and_rehomes(self):
        plan, pol = make_policy()
        rehomed = pol.force_shed(2, reason="double fault")
        assert rehomed == 2  # both terminals found free slots
        assert 2 in pol.terminal
        assert pol.active_carriers == [0, 1]
        # terminals now live on surviving carriers
        homes = {
            plan.occupant(k, s)
            for k in (0, 1)
            for s in range(plan.slots_per_frame)
        }
        assert {"term-2a", "term-2b"} <= homes
        # never restored, even in clear sky
        assert pol.update(shared_uplink_cn(12.0, 0.0, 3, 2)) == []
        assert 2 not in pol.active

    def test_force_shed_idempotent(self):
        _, pol = make_policy()
        assert pol.force_shed(1) == 2
        assert pol.force_shed(1) == 0

    def test_status_shape(self):
        _, pol = make_policy()
        pol.force_shed(0)
        st = pol.status()
        assert st["active"] == [1, 2]
        assert st["terminal"] == [0]
