"""Tests for per-carrier traffic-plane health monitoring."""

import pytest

from repro.robustness.fdir.health import (
    BurstHealth,
    CarrierHealthMonitor,
    CrcFailureTracker,
    HealthMonitorBank,
    HealthThresholds,
)

pytestmark = pytest.mark.fdir

CLEAN = {
    "uw_metric": 0.95,
    "timing_lock": 0.031,
    "carrier_lock": 0.73,
    "snr_db": 11.0,
}
NOISE = {
    "uw_metric": 0.59,
    "timing_lock": 0.015,
    "carrier_lock": 0.16,
    "snr_db": -4.0,
}


class TestThresholds:
    def test_defaults_pass_clean_and_fail_noise(self):
        mon = CarrierHealthMonitor(0)
        assert mon.observe_burst(CLEAN).healthy
        v = mon.observe_burst(NOISE)
        assert not v.healthy
        assert "uw_low" in v.reasons
        assert "carrier_unlock" in v.reasons
        assert "snr_low" in v.reasons

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthThresholds(trip_count=0)
        with pytest.raises(ValueError):
            HealthThresholds(clear_count=0)
        with pytest.raises(ValueError):
            HealthThresholds(crc_window=0)

    def test_sync_failure_dominates_metrics(self):
        mon = CarrierHealthMonitor(0)
        v = mon.observe_burst({"sync_failed": "no UW", **CLEAN})
        assert not v.healthy
        assert v.reasons == ("sync_failed",)

    def test_equipment_failure_is_unhealthy(self):
        mon = CarrierHealthMonitor(0)
        v = mon.observe_burst({"equipment_failed": "terminal"})
        assert not v.healthy
        assert v.reasons == ("equipment_failed",)

    def test_missing_metrics_are_not_judged(self):
        mon = CarrierHealthMonitor(0)
        assert mon.observe_burst({}).healthy


class TestCrcTracker:
    def test_windowed_rate(self):
        t = CrcFailureTracker(window=4)
        assert t.rate == 0.0
        for ok in (True, True, False, False):
            t.record(ok)
        assert t.rate == pytest.approx(0.5)
        # window slides: two oldest (True) fall out
        t.record(False)
        t.record(False)
        assert t.rate == pytest.approx(1.0)
        assert t.total == 6 and t.failures == 4

    def test_reset_clears_window_not_totals(self):
        t = CrcFailureTracker(window=4)
        t.record(False)
        t.reset()
        assert t.rate == 0.0
        assert t.total == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CrcFailureTracker(window=0)


class TestHysteresis:
    def test_trip_after_consecutive_bad(self):
        mon = CarrierHealthMonitor(0)
        for _ in range(2):
            mon.observe_burst(NOISE)
        assert not mon.tripped
        mon.observe_burst(NOISE)
        assert mon.tripped
        assert mon.trips == 1

    def test_single_bad_burst_does_not_trip(self):
        mon = CarrierHealthMonitor(0)
        for _ in range(10):
            mon.observe_burst(CLEAN)
            mon.observe_burst(NOISE)
        assert not mon.tripped
        assert mon.unhealthy_bursts == 10

    def test_clear_after_consecutive_good(self):
        mon = CarrierHealthMonitor(0)
        for _ in range(3):
            mon.observe_burst(NOISE)
        assert mon.tripped
        mon.observe_burst(CLEAN)
        mon.observe_burst(CLEAN)
        assert mon.tripped  # still latched mid-streak
        mon.observe_burst(CLEAN)
        assert not mon.tripped
        assert mon.clears == 1

    def test_reset_streaks_restarts_debounce(self):
        mon = CarrierHealthMonitor(0)
        mon.observe_burst(NOISE)
        mon.observe_burst(NOISE)
        mon.reset_streaks()
        mon.observe_burst(NOISE)
        assert not mon.tripped  # streak restarted by the recovery action

    def test_crc_rate_counts_as_unhealthy_with_clean_demod(self):
        """Decoder-side degradation: clean metrics, failing CRCs."""
        mon = CarrierHealthMonitor(0)
        mon.observe_burst(CLEAN)
        for _ in range(6):
            mon.observe_decode(False)
        assert mon.tripped
        assert mon.unhealthy_bursts > 0

    def test_interleaved_clean_bursts_defer_to_decoder_check(self):
        """A healthy burst between CRC failures resets the streak: the
        monitor does not trip, the arbiter's shared-decoder check (which
        reads the CRC trackers directly) owns this failure class."""
        mon = CarrierHealthMonitor(0)
        for _ in range(6):
            mon.observe_burst(CLEAN)
            mon.observe_decode(False)
        assert not mon.tripped
        assert mon.crc.rate > mon.thresholds.crc_fail_rate_max

    def test_crc_ok_never_trips(self):
        mon = CarrierHealthMonitor(0)
        for _ in range(10):
            mon.observe_burst(CLEAN)
            mon.observe_decode(True)
        assert not mon.tripped

    def test_status_shape(self):
        mon = CarrierHealthMonitor(3)
        mon.observe_burst(CLEAN)
        st = mon.status()
        assert st["carrier"] == 3
        assert st["bursts"] == 1
        assert st["last_snr_db"] == pytest.approx(11.0)


class TestBank:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthMonitorBank(0)
        with pytest.raises(ValueError):
            HealthMonitorBank(3, common_mode_fraction=0.0)

    def test_tripped_carriers(self):
        bank = HealthMonitorBank(3)
        for _ in range(3):
            bank.observe_burst(1, NOISE)
        assert bank.tripped_carriers() == [1]

    def test_common_mode_requires_majority(self):
        bank = HealthMonitorBank(3)
        for k in range(3):
            bank.observe_burst(k, CLEAN)
        assert not bank.common_mode()
        bank.observe_burst(0, NOISE)
        assert not bank.common_mode()  # 1/3 < 0.66
        bank.observe_burst(1, NOISE)
        assert bank.common_mode()  # 2/3 >= 0.66

    def test_common_mode_restricted_to_served(self):
        bank = HealthMonitorBank(3)
        bank.observe_burst(0, CLEAN)
        bank.observe_burst(1, NOISE)
        bank.observe_burst(2, NOISE)
        # among the served pair {0, 1} only one is bad: not common mode
        assert not bank.common_mode(among=[0, 1])
        assert bank.common_mode(among=[1, 2])

    def test_common_mode_needs_two_voters(self):
        bank = HealthMonitorBank(3)
        bank.observe_burst(0, NOISE)
        assert not bank.common_mode(among=[0])

    def test_status_nests_monitors(self):
        bank = HealthMonitorBank(2)
        st = bank.status()
        assert set(st["carriers"]) == {0, 1}
        assert st["tripped"] == []
