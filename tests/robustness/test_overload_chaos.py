"""Acceptance: the overload chaos campaign sheds before it collapses.

ISSUE 7's gate: zero invariant violations over 5 seeds x the four surge
scenarios (flash crowd, sustained 10x, surge-during-rain-fade,
surge-during-FDIR-recovery), each judged against a same-seed nominal
baseline run.
"""

import pytest

from repro.robustness.overload.chaos import (
    OverloadChaosCampaign,
    default_overload_scenarios,
)

pytestmark = pytest.mark.overload

SEEDS = [1, 2, 3, 4, 5]


@pytest.fixture(scope="module")
def campaign():
    c = OverloadChaosCampaign(seeds=SEEDS)
    c.run()
    return c


class TestCampaignAcceptance:
    def test_covers_all_scenarios_and_seeds(self, campaign):
        # one nominal + one surge outcome per (scenario, seed)
        assert len(campaign.outcomes) == 2 * len(SEEDS) * len(
            default_overload_scenarios()
        )

    def test_zero_violations(self, campaign):
        assert campaign.all_violations() == []

    def test_surge_actually_sheds(self, campaign):
        """The campaign attacks for real: every surge run rejected load
        and engaged the brownout ladder."""
        for o in campaign.outcomes:
            if o.nominal_run:
                continue
            assert sum(o.rejected.values()) > 0, o.scenario.name
            assert o.ladder_stats["shed_events"] >= 1, o.scenario.name

    def test_breaker_scenario_trips_and_recovers(self, campaign):
        runs = [
            o
            for o in campaign.outcomes
            if o.scenario.expect_breaker and not o.nominal_run
        ]
        assert runs
        for o in runs:
            assert 1 <= o.breaker_stats["trips"] <= 3
            assert o.breaker_stats["state"] == "closed"
            assert o.breaker_stats["fast_rejects"] >= 1

    def test_fade_scenario_sheds_and_restores_carriers(self, campaign):
        runs = [
            o
            for o in campaign.outcomes
            if o.scenario.expect_fade_shed and not o.nominal_run
        ]
        assert runs
        for o in runs:
            assert any(kind == "shed" for kind, _, _ in o.policy_events)
            assert any(kind == "restore" for kind, _, _ in o.policy_events)
            assert o.final_active_carriers == 3


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        sc = default_overload_scenarios()[0]
        c = OverloadChaosCampaign(seeds=[7])
        a = c.run_one(sc, 7)
        b = c.run_one(sc, 7)
        assert a.arrivals == b.arrivals
        assert a.served_ok == b.served_ok
        assert a.rejected == b.rejected
        assert a.ladder_history == b.ladder_history
        assert a.queue_stats == b.queue_stats

    def test_different_seeds_differ(self):
        sc = default_overload_scenarios()[0]
        c = OverloadChaosCampaign(seeds=[7, 8])
        a = c.run_one(sc, 7)
        b = c.run_one(sc, 8)
        assert a.arrivals != b.arrivals
