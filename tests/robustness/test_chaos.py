"""Tests for the chaos campaign harness and its invariants."""

import pytest

from repro import obs
from repro.net import Link, Node
from repro.net.udp import UdpSocket
from repro.robustness.chaos import (
    ACCEPTABLE_STATES,
    ChaosCampaign,
    TamperingUploads,
    arm_blackhole,
    arm_frame_drop,
    build_world,
    default_scenarios,
    violations,
)
from repro.sim import Simulator


def scenario(name):
    matches = [s for s in default_scenarios() if s.name == name]
    assert matches, f"no scenario {name!r}"
    return matches[0]


class TestInjectors:
    def _pair(self):
        sim = Simulator()
        a = Node(sim, "a", 1)
        b = Node(sim, "b", 2)
        link = Link(sim, delay=0.1, rate_bps=1e6)
        link.attach(a)
        link.attach(b)
        return sim, a, b

    def test_frame_drop_drops_exactly_n_then_passes(self):
        sim, a, b = self._pair()
        server = UdpSocket(b.ip, 5000)
        got = []

        def rx():
            while True:
                data, _src = yield server.recv()
                got.append(data)

        sim.process(rx())
        state = arm_frame_drop(b, count=2)
        tx = UdpSocket(a.ip, 5001)
        for i in range(5):
            tx.sendto(bytes([i]), 2, 5000)
        sim.run(until=10)
        assert state["dropped"] == 2 and state["left"] == 0
        assert got == [b"\x02", b"\x03", b"\x04"]

    def test_blackhole_swallows_everything(self):
        sim, a, b = self._pair()
        server = UdpSocket(b.ip, 5000)
        got = []

        def rx():
            while True:
                data, _src = yield server.recv()
                got.append(data)

        sim.process(rx())
        state = arm_blackhole(b)
        tx = UdpSocket(a.ip, 5001)
        for i in range(4):
            tx.sendto(bytes([i]), 2, 5000)
        sim.run(until=10)
        assert got == [] and state["dropped"] == 4

    def test_tampering_uploads_truncates_first_n(self):
        store = TamperingUploads(truncate_first=2)
        store["a"] = b"x" * 100
        store["b"] = b"y" * 100
        store["c"] = b"z" * 100
        assert len(store["a"]) == 50
        assert len(store["b"]) == 50
        assert len(store["c"]) == 100  # budget spent: passes clean
        assert store.tampered == 2


class TestScenarioCatalogue:
    def test_covers_the_required_failure_modes(self):
        names = {s.name for s in default_scenarios()}
        assert {
            "nominal",
            "frame-drop",
            "bit-flip",
            "seu-during-load",
            "lost-final-ack",
            "truncated-upload",
            "dead-equipment",
        } <= names
        assert len(names) >= 6 + 1  # >= 6 fault scenarios + the control

    def test_build_world_arms_the_robustness_layer(self):
        world = build_world(seed=0)
        assert world.watchdog is world.payload.obc.watchdog
        assert world.monitor is not None
        assert world.ncc.tc.policy.max_attempts >= 2
        # golden images pre-seeded into the on-board library (section 3.2)
        assert ("modem.cdma", 1) in world.payload.obc.library.catalogue()


class TestShortSweep:
    """The tier-1 deterministic sweep: every scenario, seed 0."""

    def test_all_scenarios_hold_the_invariants(self):
        camp = ChaosCampaign(seeds=(0,))
        outcomes = camp.run()
        assert len(outcomes) == len(camp.scenarios)
        for o in outcomes:
            assert not violations(o), (o.scenario, o.seed, violations(o))
            assert o.payload_state in ACCEPTABLE_STATES
        by_name = {o.scenario: o for o in outcomes}
        assert by_name["nominal"].success
        assert by_name["nominal"].tc_retransmits == 0
        assert by_name["seu-during-load"].safe_mode  # escalated to golden
        assert by_name["truncated-upload"].safe_mode
        assert by_name["dead-equipment"].payload_state == "failover"

    def test_same_seed_is_bit_reproducible(self):
        sc = scenario("frame-drop")
        runs = [ChaosCampaign().run_one(sc, 1) for _ in range(2)]
        keys = (
            "payload_state",
            "sim_seconds",
            "link_drops",
            "tc_retransmits",
            "tc_timeouts",
            "dedup_hits",
            "tm_executed",
        )
        a, b = [{k: getattr(o, k) for k in keys} for o in runs]
        assert a == b

    def test_exactly_once_execution_proven_in_metrics(self):
        """Acceptance: a retransmitted TC executes once, and the dedup
        counter that proves it lands in the obs metrics snapshot."""
        with obs.session() as (reg, _):
            o = ChaosCampaign().run_one(scenario("lost-final-ack"), 0)
            assert not violations(o)
            assert o.tc_retransmits >= 1  # replies were lost: ground resent
            assert o.dedup_hits >= 1  # ...and the gateway answered from cache
            assert o.duplicate_executions == 0  # exactly-once
            assert reg.value("ncc.gateway.dedup_hits", node="sat") == o.dedup_hits
            assert reg.value("ncc.tc.retransmits", node="ncc") == o.tc_retransmits

    def test_hang_is_reported_not_waited_out(self):
        sc = scenario("nominal")

        def stuck_driver(world, scenario, rng):
            yield world.sim.timeout(10.0)
            yield world.sim.event()  # never succeeds: a genuine hang

        sc.driver = stuck_driver
        camp = ChaosCampaign(time_limit=100.0)
        o = camp.run_one(sc, 0)
        assert not o.completed
        assert "hang" in ";".join(violations(o))


@pytest.mark.chaos
class TestFullSweep:
    """The acceptance sweep: >= 6 fault scenarios x >= 5 seeds."""

    def test_full_sweep_zero_violations(self):
        camp = ChaosCampaign(seeds=(0, 1, 2, 3, 4))
        outcomes = camp.run()
        assert len(outcomes) == len(camp.scenarios) * 5 >= 6 * 5
        bad = [(o.scenario, o.seed, violations(o)) for o in outcomes if violations(o)]
        assert bad == []
        totals = camp.totals()
        assert totals["completed"] == totals["runs"]
        assert totals["violations"] == 0
        # the sweep genuinely exercised the machinery:
        assert totals["tc_retransmits"] >= 5  # lost-final-ack x 5 seeds
        assert totals["dedup_hits"] >= 5
        assert totals["safe_mode_runs"] >= 5
        # bounded time: nothing ran to the wall
        assert all(o.sim_seconds < camp.time_limit for o in outcomes)
        assert len(camp.summary_rows()) == len(outcomes)
