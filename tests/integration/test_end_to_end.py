"""Cross-package integration tests: the paper's full scenarios."""

import numpy as np
import pytest

from repro.core import PayloadConfig, RegenerativePayload, Telecommand
from repro.dsp.channel import SatelliteChannel
from repro.dsp.modem import ebn0_to_sigma
from repro.fpga import BlindScrubber, ReadbackScrubber, SeuInjector
from repro.ncc import NetworkControlCenter, SatelliteGateway
from repro.net import Link, Node
from repro.radiation import GEO, RadiationEnvironment
from repro.sim import RngRegistry, Simulator

GEOM = (8, 8, 32)
SMALL = dict(fpga_rows=GEOM[0], fpga_cols=GEOM[1], fpga_bits_per_clb=GEOM[2])


class TestWaveformReconfigurationScenario:
    """Fig. 3 end-to-end: CDMA service -> in-orbit swap -> TDMA service."""

    def test_full_scenario(self):
        sim = Simulator()
        ground = Node(sim, "ncc", 1)
        space = Node(sim, "sat", 2)
        link = Link(sim, delay=0.25, rate_bps=1e6)
        link.attach(ground)
        link.attach(space)
        payload = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
        payload.boot(modem="modem.cdma")
        SatelliteGateway(space, payload)
        ncc = NetworkControlCenter(ground, payload.registry, 2, GEOM)
        reg = RngRegistry(21)

        # 1. CDMA traffic works before the swap
        cdma = payload.demods[0].behaviour()
        bits = reg.stream("cdma").integers(0, 2, 128).astype(np.uint8)
        rx = cdma.receive(cdma.transmit(bits), 128)
        assert np.mean(rx["bits"] != bits) == 0

        # 2. NCC uploads and commands the swap
        done = {}

        def campaign(sim):
            done["res"] = yield from ncc.reconfigure_equipment(
                "demod0", "modem.tdma", protocol="ftp"
            )

        sim.process(campaign(sim))
        sim.run(until=3600)
        assert done["res"].success

        # 3. TDMA traffic works after the swap
        tdma = payload.demods[0].behaviour()
        bits2 = reg.stream("tdma").integers(0, 2, tdma.bits_per_burst).astype(np.uint8)
        out = tdma.receive(tdma.transmit(bits2))
        assert np.mean(out["bits"] != bits2) == 0

    def test_swap_preserves_carrier_recovery_interface(self):
        """Fig. 3's point: blocks downstream of the swap are shared --
        both personalities output symbols a common demapper handles."""
        payload = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
        payload.boot(modem="modem.cdma")
        reg = RngRegistry(22)
        cdma = payload.demods[0].behaviour()
        bits = reg.stream("b").integers(0, 2, 64).astype(np.uint8)
        out_c = cdma.receive(cdma.transmit(bits), 64)
        payload.demods[0].load("modem.tdma")
        tdma = payload.demods[0].behaviour()
        bits2 = reg.stream("b2").integers(0, 2, tdma.bits_per_burst).astype(np.uint8)
        out_t = tdma.receive(tdma.transmit(bits2))
        # both produce complex unit-energy symbol streams
        for out in (out_c, out_t):
            syms = out["symbols"]
            assert np.iscomplexobj(syms)
            assert 0.5 < np.mean(np.abs(syms)) < 1.5


class TestDecoderReconfigurationScenario:
    """§2.3 bullet 1: decoder swap changes the BER/QoS point."""

    def test_turbo_swap_improves_ber(self):
        payload = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
        payload.boot(decoder="decod.none")
        rng = np.random.default_rng(11)
        ebn0 = 3.0

        def run_blocks(n=6):
            chain = payload.decoder.behaviour()
            sigma = ebn0_to_sigma(ebn0, 1, code_rate=chain.effective_rate)
            errs = tot = 0
            for _ in range(n):
                bits = rng.integers(0, 2, chain.transport_block).astype(np.uint8)
                x = 1.0 - 2.0 * chain.encode(bits).astype(float)
                y = x + sigma * rng.standard_normal(len(x))
                out = chain.decode(2 * y / sigma**2)
                errs += np.count_nonzero(out["bits"] != bits)
                tot += chain.transport_block
            return errs / tot

        ber_uncoded = run_blocks()
        # swap the decoder personality in place
        payload.decoder.load("decod.turbo")
        ber_turbo = run_blocks()
        assert ber_turbo < ber_uncoded / 5


class TestRadiationScenario:
    """§4.3 in vivo: SEUs break the payload; scrubbing keeps it alive."""

    def test_unmitigated_payload_dies_scrubbed_payload_survives(self):
        env = RadiationEnvironment(orbit=GEO, device_seu_factor=3e5)
        reg = RngRegistry(33)
        day = 86_400.0

        def build():
            pl = RegenerativePayload(
                PayloadConfig(num_carriers=1, **SMALL)
            )
            pl.boot()
            return pl

        # no mitigation: essential upsets accumulate
        pl1 = build()
        inj1 = SeuInjector(pl1.demods[0].fpga, env, reg.stream("a"))
        for _ in range(30):
            inj1.advance(day)
        unmitigated_alive = pl1.demods[0].operational

        # blind scrubbing each step
        pl2 = build()
        inj2 = SeuInjector(pl2.demods[0].fpga, env, reg.stream("b"))
        scrub = BlindScrubber(pl2.demods[0].fpga, period=day)
        for _ in range(30):
            inj2.advance(day)
            scrub.scrub()
        assert pl2.demods[0].operational
        assert not unmitigated_alive  # 3e5-accelerated: upsets guaranteed

    def test_readback_repair_reports_upset_locations(self):
        env = RadiationEnvironment(orbit=GEO, device_seu_factor=3e5)
        reg = RngRegistry(34)
        pl = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
        pl.boot()
        fpga = pl.demods[0].fpga
        scrubber = ReadbackScrubber(fpga, mode="crc")
        scrubber.snapshot()
        inj = SeuInjector(fpga, env, reg.stream("c"))
        inj.advance(30 * 86_400.0)
        assert fpga.corrupted_bits() > 0
        repaired = scrubber.scan_and_repair()
        assert repaired > 0
        assert fpga.corrupted_bits() == 0


class TestChannelImpairedChain:
    """The Fig. 2 chain under realistic channel impairments."""

    def test_tdma_uplink_with_noise_and_phase(self):
        pl = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
        pl.boot()
        reg = RngRegistry(44)
        modem = pl.demods[0].behaviour()
        bits = [
            reg.stream("b").integers(0, 2, modem.bits_per_burst).astype(np.uint8)
        ]
        wide = pl.build_uplink(bits)
        ch = SatelliteChannel(
            snr_sigma=ebn0_to_sigma(10.0, 2) / np.sqrt(modem.sps),
            phase=0.9,
            delay=2.5,
            rng=reg.stream("n"),
        )
        out = pl.process_uplink(ch.apply(wide))
        assert np.mean(out["bits"][0] != bits[0]) < 5e-3

    def test_regenerated_packets_switch_correctly(self):
        """Demod -> decode -> packet switch: the 'regenerative' loop."""
        pl = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
        pl.boot(decoder="decod.conv")
        chain = pl.decoder.behaviour()
        rng = np.random.default_rng(7)
        # a transport block whose payload is a switched packet for port 1
        packet = bytes([1]) + b"user-data-" + bytes(18)
        bits = np.unpackbits(
            np.frombuffer(packet, dtype=np.uint8)
        )[: chain.transport_block]
        padded = np.zeros(chain.transport_block, dtype=np.uint8)
        padded[: len(bits)] = bits
        llr = (1.0 - 2.0 * chain.encode(padded)) * 4.0
        decoded = pl.decode_block(llr)
        assert decoded["crc_ok"]
        regen = np.packbits(decoded["bits"]).tobytes()
        result = pl.route_packets([regen])
        assert result["ports"] == [1]
