"""The grand integration test: a week of payload operations.

Everything at once, in one simulated timeline: SEU exposure and
scrubbing housekeeping on the demodulator FPGAs, periodic validation
telemetry framed down the TM channel to the NCC, a COPS policy session,
and a mid-week waveform reconfiguration campaign over FTP -- with
traffic demodulated before and after.
"""

import numpy as np

from repro.core import (
    HousekeepingLog,
    PayloadConfig,
    RadiationExposure,
    RegenerativePayload,
    ScrubProcess,
    ValidationProcess,
)
from repro.ncc import NetworkControlCenter, SatelliteGateway
from repro.net import Link, Node
from repro.net.tm import TelemetryDownlink, TelemetryMonitor
from repro.radiation import GEO, RadiationEnvironment
from repro.sim import RngRegistry, Simulator

GEOM = (8, 8, 32)
DAY = 86_400.0


def test_one_week_of_operations():
    sim = Simulator()
    reg = RngRegistry(seed=777)
    ground = Node(sim, "ncc", 1)
    space = Node(sim, "sat", 2)
    link = Link(sim, delay=0.25, rate_bps=1e6)
    link.attach(ground)
    link.attach(space)

    payload = RegenerativePayload(
        PayloadConfig(num_carriers=2, fpga_rows=GEOM[0], fpga_cols=GEOM[1],
                      fpga_bits_per_clb=GEOM[2])
    )
    payload.boot(modem="modem.cdma")
    for name in ("modem.cdma", "modem.tdma", "decod.conv"):
        payload.obc.library.store(payload.registry.get(name).bitstream_for(*GEOM))
    gateway = SatelliteGateway(space, payload)
    ncc = NetworkControlCenter(ground, payload.registry, 2, GEOM)

    # -- housekeeping: radiation + scrubbing + validation -----------------
    env = RadiationEnvironment(orbit=GEO, device_seu_factor=2e4)
    log = HousekeepingLog()
    for k, eq in enumerate(payload.demods):
        RadiationExposure(sim, eq.fpga, env, reg.stream(f"seu{k}"),
                          step=3600.0, log=log)
        ScrubProcess(sim, eq.fpga, period=6 * 3600.0, mode="readback", log=log)
    ValidationProcess(sim, payload.obc, period=12 * 3600.0, log=log)

    # -- telemetry downlink to the NCC --------------------------------------
    cursor = {"n": 0}

    def tm_source():
        tms = payload.obc.tm_log
        out = [
            {"ok": tm.success, "id": tm.tc_id}
            for tm in tms[cursor["n"]:]
        ]
        cursor["n"] = len(tms)
        return out

    # NOTE: TM frames and the gateway's IP traffic share the ground node;
    # the monitor taps frames, the gateway's sockets use IP -- but the
    # monitor *replaces* default delivery, so it must forward non-TM
    # frames onward to IP.
    monitor = TelemetryMonitor(ground)
    original_tap = ground.frame_tap

    def tap(raw: bytes) -> None:
        original_tap(raw)
        if monitor.bad_frames:  # not a TM frame: give it to IP
            monitor.bad_frames = 0
            ground.ip.receive_frame(raw)

    ground.frame_tap = tap
    TelemetryDownlink(space, tm_source, period=6 * 3600.0)

    # -- mid-week: the CDMA -> TDMA campaign ---------------------------------
    campaign_result = {}

    def campaign(sim):
        yield sim.timeout(3.5 * DAY)
        res = yield from ncc.reconfigure_equipment(
            "demod0", "modem.tdma", protocol="ftp"
        )
        campaign_result["res"] = res

    sim.process(campaign(sim))
    sim.run(until=7 * DAY)

    # -- assertions across all subsystems ----------------------------------
    # housekeeping kept the devices alive through real SEU pressure
    assert log.upsets > 10
    assert log.repairs > 0
    assert log.availability > 0.7
    # the campaign succeeded mid-operations
    assert campaign_result["res"].success
    assert payload.demods[0].loaded_design == "modem.tdma"
    assert payload.demods[1].loaded_design == "modem.cdma"
    # telemetry reached the ground
    assert monitor.frames_received > 5
    # and traffic flows after the change: both personalities demodulate
    tdma = payload.demods[0].behaviour()
    bits = reg.stream("t").integers(0, 2, tdma.bits_per_burst).astype(np.uint8)
    out = tdma.receive(tdma.transmit(bits))
    assert np.mean(out["bits"] != bits) == 0
    cdma = payload.demods[1].behaviour()
    bits2 = reg.stream("c").integers(0, 2, 128).astype(np.uint8)
    out2 = cdma.receive(cdma.transmit(bits2), 128)
    assert np.mean(out2["bits"] != bits2) == 0
