"""Smoke tests: every example script must run to completion.

Protects deliverable (b): the examples are the public face of the
library and must not rot.  Each runs as a subprocess with a generous
timeout; heavyweight sweeps use their --fast mode.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=420):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "per-carrier demodulation" in out
        assert "packet switch" in out

    def test_waveform_reconfiguration(self):
        out = run_example("waveform_reconfiguration.py")
        assert "phase 3 - TDMA service" in out
        assert "success:  True" in out

    def test_policy_reconfiguration(self):
        out = run_example("policy_reconfiguration.py")
        assert "2 successful" in out

    def test_mission_lifetime(self):
        out = run_example("mission_lifetime.py")
        assert "all planned changes executed" in out
        assert "IMPOSSIBLE" in out

    def test_mftdma_network(self):
        out = run_example("mftdma_network.py")
        assert "utilization" in out

    def test_decoder_tradeoffs_fast(self):
        out = run_example("decoder_tradeoffs.py", "--fast")
        assert "decoder gate budgets" in out

    def test_adaptive_fade(self):
        out = run_example("adaptive_fade.py")
        assert "rain events" in out
        assert "all reports ok: True" in out

    @pytest.mark.slow
    def test_seu_campaign(self):
        out = run_example("seu_campaign.py")
        assert "blind scrubbing" in out

    @pytest.mark.slow
    def test_protocol_comparison(self):
        out = run_example("protocol_comparison.py")
        assert "256 kB" in out
