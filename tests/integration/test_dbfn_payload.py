"""Integration: the multi-element payload with the DBFN in the chain."""

import numpy as np
import pytest

from repro.core import PayloadConfig, RegenerativePayload
from repro.dsp.beamforming import steering_vector
from repro.sim import RngRegistry

SMALL = dict(fpga_rows=8, fpga_cols=8, fpga_bits_per_clb=32)


def element_signals(wide, num_elements, theta, rng, interferer=None):
    """Impinge the wideband signal on a ULA from direction theta."""
    a = steering_vector(num_elements, theta)
    x = np.outer(a, wide)
    if interferer is not None:
        sig, theta_i = interferer
        x += np.outer(steering_vector(num_elements, theta_i), sig)
    x += 0.01 * (
        rng.standard_normal(x.shape) + 1j * rng.standard_normal(x.shape)
    )
    return x


class TestDbfnPayload:
    def test_beamformed_uplink_demodulates(self):
        """Fig. 2 with the DBFN active: 8 elements, beam at boresight."""
        reg = RngRegistry(31)
        pl = RegenerativePayload(
            PayloadConfig(num_carriers=2, array_elements=8, beam_thetas=(0.0,), **SMALL)
        )
        pl.boot()
        modems = [eq.behaviour() for eq in pl.demods]
        bits = [
            reg.stream(f"c{k}").integers(0, 2, m.bits_per_burst).astype(np.uint8)
            for k, m in enumerate(modems)
        ]
        wide = pl.build_uplink(bits)
        elements = element_signals(wide, 8, 0.0, reg.stream("noise"))
        out = pl.process_uplink(elements)
        for k in range(2):
            assert np.mean(out["bits"][k] != bits[k]) < 1e-3

    def test_beam_rejects_off_axis_interferer(self):
        """An interferer 40 degrees off the beam must not break the link."""
        reg = RngRegistry(32)
        pl = RegenerativePayload(
            PayloadConfig(num_carriers=1, array_elements=16, beam_thetas=(0.0,), **SMALL)
        )
        pl.boot()
        modem = pl.demods[0].behaviour()
        bits = [
            reg.stream("b").integers(0, 2, modem.bits_per_burst).astype(np.uint8)
        ]
        wide = pl.build_uplink(bits)
        jam = 2.0 * np.exp(
            2j * np.pi * 0.11 * np.arange(len(wide))
        )  # strong off-axis CW
        elements = element_signals(
            wide, 16, 0.0, reg.stream("n"), interferer=(jam, np.deg2rad(40))
        )
        out = pl.process_uplink(elements)
        assert np.mean(out["bits"][0] != bits[0]) < 5e-3

    def test_wrong_element_count_rejected(self):
        pl = RegenerativePayload(
            PayloadConfig(num_carriers=1, array_elements=8, **SMALL)
        )
        pl.boot()
        with pytest.raises(ValueError):
            pl.process_uplink(np.zeros((4, 256), dtype=complex))

    def test_element_count_validation(self):
        with pytest.raises(ValueError):
            PayloadConfig(array_elements=0)


class TestMultiBeam:
    def test_two_beams_separate_two_users(self):
        """Two uplinks from distinct directions, one beam each: the
        payload demodulates whichever beam it is told to listen to."""
        reg = RngRegistry(35)
        pl = RegenerativePayload(
            PayloadConfig(
                num_carriers=1, array_elements=16,
                beam_thetas=(-0.3, 0.4), **SMALL,
            )
        )
        pl.boot()
        modem = pl.demods[0].behaviour()
        bits_a = reg.stream("a").integers(0, 2, modem.bits_per_burst).astype(np.uint8)
        bits_b = reg.stream("b").integers(0, 2, modem.bits_per_burst).astype(np.uint8)
        wide_a = pl.build_uplink([bits_a])
        wide_b = pl.build_uplink([bits_b])
        n = min(len(wide_a), len(wide_b))
        from repro.dsp.beamforming import steering_vector

        elements = (
            np.outer(steering_vector(16, -0.3), wide_a[:n])
            + np.outer(steering_vector(16, 0.4), wide_b[:n])
        )
        rng = reg.stream("n")
        elements += 0.01 * (
            rng.standard_normal(elements.shape) + 1j * rng.standard_normal(elements.shape)
        )
        out_a = pl.process_uplink(elements, beam=0)
        out_b = pl.process_uplink(elements, beam=1)
        assert np.mean(out_a["bits"][0] != bits_a) < 5e-3
        assert np.mean(out_b["bits"][0] != bits_b) < 5e-3

    def test_beam_index_validated(self):
        pl = RegenerativePayload(
            PayloadConfig(num_carriers=1, array_elements=8, **SMALL)
        )
        pl.boot()
        with pytest.raises(ValueError):
            pl.process_uplink(np.zeros((8, 256), dtype=complex), beam=5)

    def test_beam_config_validation(self):
        with pytest.raises(ValueError):
            PayloadConfig(beam_thetas=())
