"""Closed loop: rain fade -> policy request -> decoder upgrade.

The adaptive scenario the paper's flexibility enables: when the Ka-band
uplink fades, the satellite asks the NCC's policy server for a decision
and swaps its decoder personality to the stronger code -- in simulated
time, over COPS.
"""

import numpy as np
import pytest

from repro.core import PayloadConfig, RegenerativePayload
from repro.dsp.channel import RainFadeProcess
from repro.ncc import PolicyDrivenSatellite, ReconfigurationPolicyServer
from repro.net import Link, Node
from repro.sim import RngRegistry, Simulator

GEOM = (8, 8, 32)


class TestRainFadeModel:
    def test_long_run_availability(self):
        rng = RngRegistry(1).stream("rain")
        fade = RainFadeProcess(rng, availability=0.95, mean_event_minutes=30.0)
        raining_time = total = 0.0
        step = 60.0
        for _ in range(200_000):
            fade.advance(step)
            total += step
            if fade.raining:
                raining_time += step
        frac = raining_time / total
        assert 0.03 < frac < 0.08  # ~5 % outage target

    def test_fade_depth_lognormal_positive(self):
        rng = RngRegistry(2).stream("rain")
        fade = RainFadeProcess(rng, availability=0.8, mean_event_minutes=10.0)
        depths = []
        for _ in range(50_000):
            fade.advance(60.0)
            if fade.raining:
                depths.append(fade.attenuation_db())
        depths = np.asarray(depths)
        assert depths.min() > 0
        assert 3.0 < np.median(depths) < 12.0  # around the 6 dB median

    def test_clear_sky_zero(self):
        rng = RngRegistry(3).stream("rain")
        fade = RainFadeProcess(rng)
        assert fade.attenuation_db() == 0.0

    def test_validation(self):
        rng = RngRegistry(4).stream("r")
        with pytest.raises(ValueError):
            RainFadeProcess(rng, availability=0.4)
        with pytest.raises(ValueError):
            RainFadeProcess(rng, mean_event_minutes=0.0)
        with pytest.raises(ValueError):
            RainFadeProcess(rng).advance(-1.0)


class TestAdaptiveCodingLoop:
    def test_fade_triggers_decoder_upgrade(self):
        sim = Simulator()
        reg = RngRegistry(7)
        ground = Node(sim, "ncc", 1)
        space = Node(sim, "sat", 2)
        link = Link(sim, delay=0.25, rate_bps=1e6)
        link.attach(ground)
        link.attach(space)

        payload = RegenerativePayload(
            PayloadConfig(num_carriers=1, fpga_rows=GEOM[0], fpga_cols=GEOM[1],
                          fpga_bits_per_clb=GEOM[2])
        )
        payload.boot(decoder="decod.none")
        for name in ("decod.none", "decod.turbo"):
            payload.obc.library.store(
                payload.registry.get(name).bitstream_for(*GEOM)
            )
        pdp = ReconfigurationPolicyServer(ground)
        pdp.set_policy("decod0", "rain-fade", "decod.turbo")
        pdp.set_policy("decod0", "clear-sky", "decod.none")
        pep = PolicyDrivenSatellite(space, payload.obc, pdp_address=1)

        fade = RainFadeProcess(
            reg.stream("rain"), availability=0.7, mean_event_minutes=20.0
        )
        transitions = []

        def weather_watch(sim):
            yield from pep.start()
            state = False
            for _ in range(500):
                yield sim.timeout(120.0)
                fade.advance(120.0)
                deep = fade.attenuation_db() > 3.0
                if deep and not state:
                    state = True
                    yield from pep.request_policy("decod0", "rain-fade")
                    transitions.append(("fade", sim.now, payload.decoder.loaded_design))
                elif not deep and state:
                    state = False
                    yield from pep.request_policy("decod0", "clear-sky")
                    transitions.append(("clear", sim.now, payload.decoder.loaded_design))

        sim.process(weather_watch(sim))
        sim.run(until=500 * 120.0 + 100)

        assert len(transitions) >= 2
        fades = [t for t in transitions if t[0] == "fade"]
        clears = [t for t in transitions if t[0] == "clear"]
        assert all(t[2] == "decod.turbo" for t in fades)
        assert all(t[2] == "decod.none" for t in clears)
        # the reports reached the NCC
        assert len(pdp.reports) == len(transitions)
        assert all(r.success for r in pdp.reports)
