"""Failure-injection integration tests: the unhappy paths of §3.

The paper requires the system to survive its own failure modes: bad
uploads must be caught by the file CRC, corrupted loads by the
validation service (with rollback), and memory upsets by EDAC.
"""

import numpy as np
import pytest

from repro.core import PayloadConfig, RegenerativePayload, Telecommand
from repro.ncc import NetworkControlCenter, SatelliteGateway
from repro.net import Link, Node
from repro.sim import RngRegistry, Simulator

GEOM = (8, 8, 32)
SMALL = dict(fpga_rows=GEOM[0], fpga_cols=GEOM[1], fpga_bits_per_clb=GEOM[2])


def scenario():
    sim = Simulator()
    ground = Node(sim, "ncc", 1)
    space = Node(sim, "sat", 2)
    link = Link(sim, delay=0.25, rate_bps=1e6)
    link.attach(ground)
    link.attach(space)
    payload = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
    payload.boot(modem="modem.cdma")
    gw = SatelliteGateway(space, payload)
    ncc = NetworkControlCenter(ground, payload.registry, 2, GEOM)
    return sim, payload, gw, ncc


class TestCorruptedUpload:
    def test_corrupted_file_rejected_at_store(self):
        """A bit-flipped bitstream file fails its container CRC when the
        store TC tries to register it -- before it can reach an FPGA."""
        sim, payload, gw, ncc = scenario()
        design = payload.registry.get("modem.tdma")
        blob = bytearray(design.bitstream_for(*GEOM).to_bytes())
        blob[100] ^= 0xFF  # corruption in transit/storage
        results = {}

        def campaign(sim):
            yield from ncc.upload("modem.tdma@1.bit", bytes(blob), "ftp")
            reply = yield from ncc.send_telecommand(
                "store",
                {"file": "modem.tdma@1.bit", "function": "modem.tdma", "version": 1},
            )
            # store succeeds (raw bytes) but the reconfigure must fail at fetch
            reply2 = yield from ncc.send_telecommand(
                "reconfigure", {"equipment": "demod0", "function": "modem.tdma"}
            )
            results["store"] = reply
            results["reconf"] = reply2

        sim.process(campaign(sim))
        sim.run(until=600)
        assert not results["reconf"]["success"]
        # the payload still runs its previous personality... or is safely off
        assert payload.demods[0].loaded_design in ("modem.cdma", None)

    def test_missing_upload_reported(self):
        sim, payload, gw, ncc = scenario()
        results = {}

        def campaign(sim):
            reply = yield from ncc.send_telecommand(
                "store", {"file": "ghost.bit", "function": "x", "version": 1}
            )
            results["reply"] = reply

        sim.process(campaign(sim))
        sim.run(until=60)
        assert not results["reply"]["success"]
        assert "ghost.bit" in str(results["reply"]["payload"])


class TestMemoryUpsets:
    def test_library_edac_corrects_singles(self):
        sim, payload, gw, ncc = scenario()
        lib = payload.obc.library
        bs = payload.registry.get("modem.tdma").bitstream_for(*GEOM)
        lib.store(bs)
        # scattered single-bit upsets in on-board memory
        lib.memory.upset_random_bits(8, RngRegistry(5).stream("mem"))
        fetched = lib.fetch("modem.tdma")
        assert fetched.crc32() == bs.crc32()

    def test_scrub_then_fetch_after_heavy_upsets(self):
        sim, payload, gw, ncc = scenario()
        lib = payload.obc.library
        bs = payload.registry.get("modem.tdma").bitstream_for(*GEOM)
        lib.store(bs)
        lib.memory.upset_random_bits(5, RngRegistry(6).stream("mem"))
        fixed = lib.memory.scrub()
        assert fixed >= 1
        assert lib.fetch("modem.tdma").crc32() == bs.crc32()


class TestEquipmentFaults:
    def test_reconfigure_unknown_function_keeps_service(self):
        sim, payload, gw, ncc = scenario()
        tm = payload.obc.execute(
            Telecommand(1, "reconfigure",
                        {"equipment": "demod0", "function": "modem.ofdm"})
        )
        assert not tm.success
        assert payload.demods[0].operational  # still serving CDMA

    def test_validate_after_inflight_seu(self):
        """An SEU between load and validate triggers the FAIL telemetry."""
        sim, payload, gw, ncc = scenario()
        bs = payload.registry.get("modem.tdma").bitstream_for(*GEOM)
        payload.obc.library.store(bs)
        tm = payload.obc.execute(
            Telecommand(2, "reconfigure",
                        {"equipment": "demod0", "function": "modem.tdma"})
        )
        assert tm.success
        payload.demods[0].fpga.upset_bits(np.array([10, 20]))
        tm = payload.obc.execute(Telecommand(3, "validate", {"equipment": "demod0"}))
        assert not tm.success
