"""Equivalence suite: the carrier-parallel engine must be invisible.

The determinism contract of :mod:`repro.parallel` is that attaching an
executor to :class:`~repro.core.payload.RegenerativePayload` is a pure
wall-clock knob: same-seed ``process_uplink`` runs deliver bit-identical
bits, diagnostics and decoded blocks across the ``serial`` and
``threads`` backends at every worker count, fault containment keeps a
sync-lost or dead-equipment carrier inside its own lane, FDIR health
monitors see identical delivery streams, and scenario trace hashes do
not move.  This suite pins each of those claims.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.payload import PayloadConfig, RegenerativePayload
from repro.core.registry import default_registry
from repro.dsp.tdma import BurstFormat, BurstSyncError
from repro.parallel import CarrierExecutor
from repro.robustness.fdir import HealthMonitorBank
from repro.robustness.fdir.chaos import build_traffic_world
from repro.scenarios import ExecutorSpec, ScenarioError, ScenarioSpec, run_scenario
from repro.sim import RngRegistry

pytestmark = pytest.mark.parallel

BURST = BurstFormat(preamble=16, uw=16, payload=96)
CARRIERS = 4

#: every backend/worker combination the contract covers
VARIANTS = [
    ("serial", None),
    ("threads", 1),
    ("threads", 2),
    ("threads", 4),
]


def _build(executor=None) -> RegenerativePayload:
    registry = default_registry(tdma_burst=BURST, transport_block=40)
    payload = RegenerativePayload(
        PayloadConfig(num_carriers=CARRIERS, channelizer_taps=8),
        registry=registry,
        executor=executor,
    )
    payload.boot()
    return payload


def _uplink(payload: RegenerativePayload, seed: int = 7) -> np.ndarray:
    """A clean 4-carrier frame carrying real encoded transport blocks,
    so ``decode=True`` regenerates every carrier with ``crc_ok``."""
    rng = RngRegistry(seed).stream("equivalence")
    chain = payload.decoder.behaviour()
    modem = payload.demods[0].behaviour()
    bits = []
    for _ in range(CARRIERS):
        block = rng.integers(0, 2, chain.transport_block).astype(np.uint8)
        coded = chain.encode(block)[: modem.bits_per_burst]
        bits.append(coded)
    wide = payload.build_uplink(bits)
    noise = 0.02 * (
        rng.standard_normal(len(wide)) + 1j * rng.standard_normal(len(wide))
    )
    return wide + noise


def _assert_same_result(ref: dict, out: dict) -> None:
    """Bit-identity of two process_uplink results (incl. decoded)."""
    assert len(ref["bits"]) == len(out["bits"])
    for a, b in zip(ref["bits"], out["bits"]):
        assert np.array_equal(a, b)
    assert len(ref["diagnostics"]) == len(out["diagnostics"])
    for da, db in zip(ref["diagnostics"], out["diagnostics"]):
        assert da.keys() == db.keys()
        for key in da:
            va, vb = da[key], db[key]
            if isinstance(va, np.ndarray):
                assert np.array_equal(va, vb), f"diagnostic {key!r} differs"
            else:
                assert va == vb, f"diagnostic {key!r} differs"
    if "decoded" in ref or "decoded" in out:
        assert len(ref["decoded"]) == len(out["decoded"])
        for a, b in zip(ref["decoded"], out["decoded"]):
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert np.array_equal(a["bits"], b["bits"])
                assert a["crc_ok"] == b["crc_ok"]


class TestProcessUplinkEquivalence:
    def test_backends_and_worker_counts_match_inline_reference(self):
        """Same seed, same bits/diagnostics/decoded on every variant."""
        reference = _build(executor=None)
        wide = _uplink(reference)
        ref = reference.process_uplink(wide, decode=True)
        # sanity: the clean frame really decodes on every carrier
        assert all(d is not None and d["crc_ok"] for d in ref["decoded"])
        for backend, workers in VARIANTS:
            payload = _build(CarrierExecutor(backend, workers))
            out = payload.process_uplink(wide, decode=True)
            _assert_same_result(ref, out)
            payload.executor.close()

    def test_repeated_runs_on_one_pool_stay_identical(self):
        """Pool reuse across frames never leaks state between batches."""
        reference = _build(executor=None)
        payload = _build(CarrierExecutor("threads", 2))
        for seed in (1, 2, 3):
            wide = _uplink(reference, seed=seed)
            _assert_same_result(
                reference.process_uplink(wide, decode=True),
                payload.process_uplink(wide, decode=True),
            )
        assert payload.executor.stats["batches"] == 3
        payload.executor.close()


class TestMixedFaultFrame:
    """One dead demod + one sync-lost carrier, healthy neighbours."""

    DEAD, LOST = 1, 2

    def _arm_faults(self, payload: RegenerativePayload) -> None:
        # dead equipment: powered off with no design -> EquipmentError
        payload.demods[self.DEAD].unload()
        # sync loss: the cached personality instance loses the burst
        modem = payload.demods[self.LOST].behaviour()

        def no_sync(*args, **kwargs):
            raise BurstSyncError("unique word not found")

        modem.receive = no_sync

    def _run(self, executor):
        reference = _build(executor=None)
        wide = _uplink(reference)  # built while all carriers still work
        self._arm_faults(reference)
        ref = reference.process_uplink(wide, decode=True)
        payload = _build(executor)
        self._arm_faults(payload)
        out = payload.process_uplink(wide, decode=True)
        return ref, out, payload

    @pytest.mark.parametrize("backend,workers", VARIANTS)
    def test_faults_stay_in_lane_on_every_variant(self, backend, workers):
        ref, out, payload = self._run(CarrierExecutor(backend, workers))
        _assert_same_result(ref, out)
        for result in (ref, out):
            diags, decoded = result["diagnostics"], result["decoded"]
            assert "equipment_failed" in diags[self.DEAD]
            assert "sync_failed" in diags[self.LOST]
            assert not np.any(result["bits"][self.DEAD])
            assert not np.any(result["bits"][self.LOST])
            assert decoded[self.DEAD] is None and decoded[self.LOST] is None
            # the faults never spilled into the healthy lanes
            for k in range(CARRIERS):
                if k in (self.DEAD, self.LOST):
                    continue
                assert "sync_failed" not in diags[k]
                assert "equipment_failed" not in diags[k]
                assert decoded[k] is not None and decoded[k]["crc_ok"]
        payload.executor.close()


class TestFdirDeliveryEquivalence:
    def _monitor_state(self, bank: HealthMonitorBank) -> list:
        return [
            {
                "bursts": m.bursts,
                "unhealthy": m.unhealthy_bursts,
                "tripped": m.tripped,
                "trips": m.trips,
                "clears": m.clears,
                "last_reasons": None if m.last is None else m.last.reasons,
                "crc_failures": m.crc.failures,
            }
            for m in (bank.monitor(k) for k in range(CARRIERS))
        ]

    def test_health_bank_sees_identical_deliveries(self):
        """The FDIR detection path cannot tell the backends apart."""
        banks = {}
        for label, executor in (
            ("inline", None),
            ("threads", CarrierExecutor("threads", 2)),
        ):
            payload = _build(executor)
            bank = HealthMonitorBank(CARRIERS)
            payload.attach_health(bank)
            wide = _uplink(payload)
            payload.process_uplink(wide, decode=True)  # clean frame
            payload.demods[0].unload()  # then carrier 0 dies
            for _ in range(3):
                payload.process_uplink(wide, decode=True)
            banks[label] = self._monitor_state(bank)
            if payload.executor is not None:
                payload.executor.close()
        assert banks["inline"] == banks["threads"]
        # and the faulty carrier's monitor really saw the fault
        assert banks["threads"][0]["unhealthy"] == 3
        assert banks["threads"][0]["last_reasons"] == ("equipment_failed",)


class TestScenarioDeterminism:
    def _spec(self, **kw) -> ScenarioSpec:
        return ScenarioSpec(
            name="parallel-equivalence", frames=5, recovery_tail=2, **kw
        )

    def test_trace_hash_identical_across_executor_specs(self):
        """The executor knob moves wall-clock only, never the trace."""
        ref = run_scenario(self._spec())
        for executor in (
            ExecutorSpec(backend="serial"),
            ExecutorSpec(backend="threads", workers=1),
            ExecutorSpec(backend="threads", workers=2),
        ):
            out = run_scenario(self._spec(executor=executor))
            assert out.trace_hash == ref.trace_hash, executor
            assert out.kind_counts == ref.kind_counts
            assert out.metrics == ref.metrics

    def test_spec_hash_unperturbed_by_the_new_field(self):
        """Pre-existing golden spec hashes cannot drift: ``executor``
        is omitted from the canonical JSON at its default."""
        spec = self._spec()
        assert "executor" not in spec.to_dict()
        assert spec.spec_hash() == ScenarioSpec.from_dict(spec.to_dict()).spec_hash()
        # old-style serialized specs (no executor key) still load
        legacy = spec.to_dict()
        assert ScenarioSpec.from_dict(legacy) == spec

    def test_executor_spec_roundtrip_and_validation(self):
        spec = self._spec(executor=ExecutorSpec(backend="threads", workers=2))
        d = spec.to_dict()
        assert d["executor"] == {"backend": "threads", "workers": 2}
        assert ScenarioSpec.from_dict(d) == spec
        assert spec.spec_hash() != self._spec().spec_hash()
        with pytest.raises(ScenarioError, match="executor.backend"):
            self._spec(executor=ExecutorSpec(backend="mpi")).validate()
        with pytest.raises(ScenarioError, match="executor.workers"):
            self._spec(
                executor=ExecutorSpec(backend="threads", workers=0)
            ).validate()


class TestWorldBuilderKnob:
    def test_executor_accepts_instance_or_backend_name(self):
        world = build_traffic_world(seed=5, executor="threads")
        assert isinstance(world.payload.executor, CarrierExecutor)
        assert world.payload.executor.backend == "threads"
        world.payload.executor.close()

        ex = CarrierExecutor("serial")
        world = build_traffic_world(seed=5, executor=ex)
        assert world.payload.executor is ex

    def test_default_world_is_untouched(self):
        assert build_traffic_world(seed=5).payload.executor is None
