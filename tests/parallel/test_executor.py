"""Unit tests of the carrier-parallel execution engine itself.

The payload-level equivalence suite lives in
``test_executor_equivalence.py``; this module pins the engine's own
contract -- backend validation, ordered joins, per-lane fault
containment, cumulative stats and the ``perf.uplink.*`` metric series.
"""

import threading
import time

import pytest

from repro import obs
from repro.parallel import BACKENDS, CarrierExecutor, LaneOutcome, resolve_workers

pytestmark = pytest.mark.parallel


class TestConstruction:
    def test_backends_catalogue(self):
        assert BACKENDS == ("serial", "threads")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            CarrierExecutor("processes")

    def test_serial_reports_one_worker(self):
        assert CarrierExecutor("serial", workers=7).workers == 1

    def test_threads_workers_resolved(self):
        assert CarrierExecutor("threads", workers=3).workers == 3

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            CarrierExecutor("threads", workers=0)

    def test_auto_workers_at_least_one(self):
        assert resolve_workers(None) >= 1

    def test_context_manager_closes_pool(self):
        with CarrierExecutor("threads", workers=2) as ex:
            ex.run([lambda: 1, lambda: 2])
            assert ex._pool is not None
        assert ex._pool is None
        ex.close()  # idempotent


class TestOrderedJoin:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", None), ("threads", 1), ("threads", 2), ("threads", 4),
    ])
    def test_results_in_submission_order(self, backend, workers):
        ex = CarrierExecutor(backend, workers)
        # later lanes finish first under a pool; the join must not care
        lanes = [
            (lambda k=k: (time.sleep(0.002 * (4 - k)), k)[1])
            for k in range(4)
        ]
        outcomes = ex.run(lanes)
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert [o.result() for o in outcomes] == [0, 1, 2, 3]
        ex.close()

    def test_empty_lane_list(self):
        assert CarrierExecutor("threads", 2).run([]) == []

    def test_map_convenience(self):
        ex = CarrierExecutor("serial")
        outcomes = ex.map(lambda x: x * x, [1, 2, 3])
        assert [o.result() for o in outcomes] == [1, 4, 9]

    def test_threads_actually_fan_out(self):
        """With >1 workers, lanes run on more than one thread."""
        ex = CarrierExecutor("threads", workers=4)
        seen = set()
        barrier = threading.Barrier(2, timeout=5.0)

        def lane():
            seen.add(threading.get_ident())
            barrier.wait()  # forces two lanes to overlap in time
            return True

        outcomes = ex.run([lane, lane])
        assert all(o.ok for o in outcomes)
        assert len(seen) == 2
        ex.close()


class TestFaultContainment:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", None), ("threads", 2),
    ])
    def test_one_lane_error_stays_in_lane(self, backend, workers):
        ex = CarrierExecutor(backend, workers)
        lanes = [
            lambda: "a",
            lambda: (_ for _ in ()).throw(RuntimeError("lane 1 died")),
            lambda: "c",
        ]
        outcomes = ex.run(lanes)
        assert outcomes[0].result() == "a"
        assert outcomes[2].result() == "c"
        assert not outcomes[1].ok
        with pytest.raises(RuntimeError, match="lane 1 died"):
            outcomes[1].result()
        assert ex.stats["lane_errors"] == 1
        ex.close()

    def test_outcome_dataclass(self):
        ok = LaneOutcome(index=0, value=42)
        assert ok.ok and ok.result() == 42
        bad = LaneOutcome(index=1, error=ValueError("x"))
        assert not bad.ok


class TestStatsAndObs:
    def test_cumulative_stats(self):
        ex = CarrierExecutor("serial")
        ex.run([lambda: 1, lambda: 2])
        ex.run([lambda: 3])
        assert ex.stats["batches"] == 2
        assert ex.stats["lanes"] == 3
        assert ex.stats["wall_seconds"] > 0.0
        assert ex.stats["busy_seconds"] > 0.0
        assert 0.0 <= ex.occupancy <= 1.0

    def test_perf_uplink_series_published(self):
        with obs.session() as (reg, tracer):
            ex = CarrierExecutor("threads", workers=2, name="test")
            ex.run([lambda: 1, lambda: 2, lambda: 3])
            ex.close()
            export = reg.export()
            for series in (
                "perf.uplink.batches",
                "perf.uplink.carriers",
                "perf.uplink.carrier_seconds",
                "perf.uplink.workers",
                "perf.uplink.occupancy",
                "perf.uplink.speedup_est",
            ):
                assert series in export, f"missing {series}"
            # workers must never emit trace events: lane timing is
            # wall-clock noise and would break trace-hash determinism
            assert tracer.total == 0

    def test_no_series_while_disabled(self):
        ex = CarrierExecutor("serial")
        ex.run([lambda: 1])  # must not blow up without a session
        assert ex.stats["batches"] == 1
