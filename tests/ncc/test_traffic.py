"""Tests for the traffic-evolution model and mission planner."""

import numpy as np
import pytest

from repro.ncc import MissionPlanner, TrafficModel
from repro.ncc.traffic import ServiceMix


class TestServiceMix:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ServiceMix(0.0, 0.5, 0.1, 0.1, 1.0)


class TestTrafficModel:
    def test_launch_mix_voice_dominated(self):
        mix = TrafficModel().mix_at(0.0)
        assert mix.voice == pytest.approx(0.8)
        assert mix.video == pytest.approx(0.0, abs=1e-9)

    def test_voice_drops_below_20_percent(self):
        """The paper: 'voice traffic should represent less than 20 %'."""
        tm = TrafficModel()
        year = tm.years_until_voice_below(0.2)
        assert 2.0 < year < 10.0
        assert tm.mix_at(year + 0.1).voice < 0.2

    def test_video_replaces_text(self):
        """'text data (SMS) ... slowly replaced by video data'."""
        tm = TrafficModel()
        early = tm.mix_at(1.0)
        late = tm.mix_at(8.0)
        assert early.text > early.video * 0.8
        assert late.video > late.text * 5

    def test_total_demand_grows(self):
        tm = TrafficModel()
        totals = [tm.mix_at(float(y)).total_mbps for y in range(0, 15, 3)]
        assert all(b > a for a, b in zip(totals, totals[1:]))

    def test_fractions_always_normalized(self):
        tm = TrafficModel()
        for y in np.linspace(0, 15, 40):
            mix = tm.mix_at(float(y))
            assert np.isclose(mix.voice + mix.text + mix.video, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficModel(launch_total_mbps=0.0)
        with pytest.raises(ValueError):
            TrafficModel(voice_initial=0.05, voice_floor=0.10)
        with pytest.raises(ValueError):
            TrafficModel().mix_at(-1.0)

    def test_years_until_voice_below_edges(self):
        tm = TrafficModel()  # v0=0.8, floor=0.10
        # already below at launch: the answer is year zero, not an error
        assert tm.years_until_voice_below(0.95) == 0.0
        assert tm.years_until_voice_below(0.8) == 0.0
        # at or under the asymptotic floor: never happens
        with pytest.raises(ValueError):
            tm.years_until_voice_below(0.10)
        with pytest.raises(ValueError):
            tm.years_until_voice_below(0.05)


class TestMissionPlanner:
    def test_schedule_contains_both_change_kinds(self):
        """The mission needs waveform AND decoder reconfigurations --
        the paper's two §2.3 examples."""
        plan = MissionPlanner(TrafficModel()).schedule()
        functions = {c.function for c in plan}
        assert "modem.tdma" in functions
        assert "decod.conv" in functions or "decod.turbo" in functions

    def test_changes_ordered_in_time(self):
        plan = MissionPlanner(TrafficModel()).schedule()
        years = [c.year for c in plan]
        assert years == sorted(years)

    def test_waveform_change_when_demand_exceeds_ceiling(self):
        plan = MissionPlanner(TrafficModel()).schedule()
        wf = [c for c in plan if c.function == "modem.tdma"]
        assert len(wf) == 1
        mp = MissionPlanner(TrafficModel())
        assert mp.per_user_demand(wf[0].year) > mp.CDMA_CEILING_MBPS

    def test_decoder_stepped_up_not_down(self):
        plan = MissionPlanner(TrafficModel()).schedule()
        decs = [c.function for c in plan if c.equipment == "decod0"]
        assert decs == sorted(decs)  # conv before turbo alphabetically & in time

    def test_no_changes_for_flat_traffic(self):
        """A static mission needs no reconfiguration (transparent-payload
        world) -- the planner is not trigger-happy."""
        flat = TrafficModel(launch_total_mbps=0.5, growth_per_year=0.0,
                            voice_initial=0.8, voice_floor=0.75,
                            voice_decay_years=100.0)
        plan = MissionPlanner(flat).schedule()
        assert plan == []

    def test_validation(self):
        with pytest.raises(ValueError):
            MissionPlanner(TrafficModel(), mission_years=0.0)
        with pytest.raises(ValueError):
            MissionPlanner(TrafficModel()).per_user_demand(1.0, users=0)
