"""Tests for COPS-driven reconfiguration policies."""

import pytest

from repro.core import PayloadConfig, RegenerativePayload
from repro.ncc import PolicyDrivenSatellite, ReconfigurationPolicyServer
from repro.net import Link, Node
from repro.sim import Simulator

GEOM = (8, 8, 32)
SMALL = dict(fpga_rows=GEOM[0], fpga_cols=GEOM[1], fpga_bits_per_clb=GEOM[2])


def setup_policy_scenario():
    sim = Simulator()
    ground = Node(sim, "ncc", 1)
    space = Node(sim, "sat", 2)
    link = Link(sim, delay=0.25, rate_bps=1e6)
    link.attach(ground)
    link.attach(space)
    payload = RegenerativePayload(PayloadConfig(num_carriers=2, **SMALL))
    payload.boot(modem="modem.cdma")
    # the bitstreams the policies will command must be on board
    for name in ("modem.cdma", "modem.tdma"):
        payload.obc.library.store(payload.registry.get(name).bitstream_for(*GEOM))
    pdp = ReconfigurationPolicyServer(ground)
    pep = PolicyDrivenSatellite(space, payload.obc, pdp_address=1)
    return sim, payload, pdp, pep


class TestClientInitiative:
    def test_request_enforce_report_loop(self):
        sim, payload, pdp, pep = setup_policy_scenario()
        pdp.set_policy("demod0", "traffic-growth", "modem.tdma")
        results = {}

        def scenario(sim):
            yield from pep.start()
            report = yield from pep.request_policy("demod0", "traffic-growth")
            results["report"] = report

        sim.process(scenario(sim))
        sim.run(until=120)
        assert results["report"].success
        assert payload.demods[0].loaded_design == "modem.tdma"
        assert payload.demods[1].loaded_design == "modem.cdma"

    def test_no_matching_policy_is_noop(self):
        sim, payload, pdp, pep = setup_policy_scenario()
        results = {}

        def scenario(sim):
            yield from pep.start()
            report = yield from pep.request_policy("demod0", "unknown-trigger")
            results["report"] = report

        sim.process(scenario(sim))
        sim.run(until=120)
        assert results["report"].success
        assert results["report"].detail.get("noop")
        assert payload.demods[0].loaded_design == "modem.cdma"  # unchanged

    def test_pdp_receives_reports(self):
        sim, payload, pdp, pep = setup_policy_scenario()
        pdp.set_policy("demod0", "go", "modem.tdma")

        def scenario(sim):
            yield from pep.start()
            yield from pep.request_policy("demod0", "go")

        sim.process(scenario(sim))
        sim.run(until=120)
        assert len(pdp.reports) == 1
        assert pdp.reports[0].success
        assert pdp.decisions_issued == 1


class TestServerInitiative:
    def test_pushed_decision_enforced(self):
        """'transmitted at ... the server initiative'."""
        sim, payload, pdp, pep = setup_policy_scenario()

        def scenario(sim):
            yield from pep.start()
            yield sim.timeout(1.0)

        def pusher(sim):
            yield sim.timeout(3.0)
            pdp.push(2, "demod1", "modem.tdma")

        sim.process(scenario(sim))
        sim.process(pusher(sim))
        sim.run(until=120)
        assert payload.demods[1].loaded_design == "modem.tdma"
        assert len(pep.enforced) == 1
        assert len(pdp.reports) == 1

    def test_push_failure_reported(self):
        """A decision naming a missing design fails and is reported so."""
        sim, payload, pdp, pep = setup_policy_scenario()

        def scenario(sim):
            yield from pep.start()
            yield sim.timeout(1.0)

        def pusher(sim):
            yield sim.timeout(3.0)
            pdp.push(2, "demod0", "modem.ofdm")  # not in the registry

        sim.process(scenario(sim))
        sim.process(pusher(sim))
        sim.run(until=120)
        assert len(pdp.reports) == 1
        assert not pdp.reports[0].success
        assert payload.demods[0].loaded_design == "modem.cdma"  # intact


class TestFdirFallbackPolicies:
    def test_install_creates_one_row_per_pair(self):
        sim, payload, pdp, pep = setup_policy_scenario()
        n = pdp.install_fdir_fallbacks(
            "demod0", {"modem.cdma": "modem.tdma", "modem.tdma8": "modem.tdma"}
        )
        assert n == 2
        assert pdp.table[("demod0", "fallback:modem.cdma")] == "modem.tdma"
        assert pdp.table[("demod0", "fallback:modem.tdma8")] == "modem.tdma"

    def test_pulled_fallback_decision_is_enforced(self):
        """A PEP asking 'what is the fallback for my personality?' gets
        the same answer the on-board ladder would take."""
        from repro.robustness.fdir import DEFAULT_FALLBACKS

        sim, payload, pdp, pep = setup_policy_scenario()
        pdp.install_fdir_fallbacks(
            "demod0", {"modem.cdma": "modem.tdma", **DEFAULT_FALLBACKS}
        )
        results = {}

        def scenario(sim):
            yield from pep.start()
            report = yield from pep.request_policy(
                "demod0", "fallback:modem.cdma"
            )
            results["report"] = report

        sim.process(scenario(sim))
        sim.run(until=120)
        assert results["report"].success
        assert payload.demods[0].loaded_design == "modem.tdma"
