"""Tests for end-to-end NCC reconfiguration campaigns."""

import numpy as np
import pytest

from repro.core import PayloadConfig, RegenerativePayload
from repro.ncc import NetworkControlCenter, SatelliteGateway
from repro.net import Link, Node
from repro.sim import RngRegistry, Simulator

GEOM = (8, 8, 32)


def setup_scenario(ber=0.0, seed=0, rate=1e6, num_carriers=2):
    sim = Simulator()
    ground = Node(sim, "ncc", 1)
    space = Node(sim, "sat", 2)
    rng = RngRegistry(seed).stream("link") if ber > 0 else None
    link = Link(sim, delay=0.25, rate_bps=rate, ber=ber, rng=rng)
    link.attach(ground)
    link.attach(space)
    payload = RegenerativePayload(
        PayloadConfig(
            num_carriers=num_carriers,
            fpga_rows=GEOM[0],
            fpga_cols=GEOM[1],
            fpga_bits_per_clb=GEOM[2],
        )
    )
    payload.boot(modem="modem.cdma")
    gateway = SatelliteGateway(space, payload)
    ncc = NetworkControlCenter(
        ground, payload.registry, sat_address=2, fpga_geometry=GEOM
    )
    return sim, payload, gateway, ncc


class TestCampaign:
    @pytest.mark.parametrize("protocol", ["ftp", "tftp", "scps"])
    def test_waveform_change_over_each_protocol(self, protocol):
        """The Fig. 3 CDMA->TDMA change, through each N3 protocol."""
        sim, payload, gw, ncc = setup_scenario()
        results = {}

        def campaign(sim):
            res = yield from ncc.reconfigure_equipment(
                "demod0", "modem.tdma", protocol=protocol
            )
            results["res"] = res

        sim.process(campaign(sim))
        sim.run(until=3600)
        res = results["res"]
        assert res.success
        assert payload.demods[0].loaded_design == "modem.tdma"
        assert payload.demods[1].loaded_design == "modem.cdma"  # untouched
        assert res.crc is not None

    def test_crc_telemetry_matches_uploaded_image(self):
        sim, payload, gw, ncc = setup_scenario()
        results = {}

        def campaign(sim):
            results["res"] = yield from ncc.reconfigure_equipment(
                "demod0", "modem.tdma", protocol="ftp"
            )

        sim.process(campaign(sim))
        sim.run(until=3600)
        expected = payload.registry.get("modem.tdma").bitstream_for(*GEOM).crc32()
        assert results["res"].crc == expected

    def test_upload_dominates_campaign_time(self):
        """§3.1: on a narrow TC uplink the file transfer dominates; the
        on-board steps (FPGA load + CRC) are comparatively fast."""
        sim, payload, gw, ncc = setup_scenario(rate=20e3)  # 20 kbps TC link
        results = {}

        def campaign(sim):
            results["res"] = yield from ncc.reconfigure_equipment(
                "demod0", "modem.tdma", protocol="ftp"
            )

        sim.process(campaign(sim))
        sim.run(until=3600)
        res = results["res"]
        # the on-board outage is milliseconds; the upload is seconds
        assert res.upload_seconds > 10 * res.telemetry["outage_s"]

    def test_campaign_survives_lossy_link(self):
        sim, payload, gw, ncc = setup_scenario(ber=1e-6, seed=4)
        results = {}

        def campaign(sim):
            results["res"] = yield from ncc.reconfigure_equipment(
                "demod0", "modem.tdma", protocol="ftp"
            )

        sim.process(campaign(sim))
        sim.run(until=3600)
        assert results["res"].success

    def test_decoder_change_campaign(self):
        """§2.3 bullet 1: swap the decoder personality in orbit."""
        sim, payload, gw, ncc = setup_scenario()
        results = {}

        def campaign(sim):
            results["res"] = yield from ncc.reconfigure_equipment(
                "decod0", "decod.turbo", protocol="ftp"
            )

        sim.process(campaign(sim))
        sim.run(until=3600)
        assert results["res"].success
        assert payload.decoder.loaded_design == "decod.turbo"

    def test_status_telecommand_roundtrip(self):
        sim, payload, gw, ncc = setup_scenario()
        results = {}

        def q(sim):
            results["reply"] = yield from ncc.send_telecommand("status", {})

        sim.process(q(sim))
        sim.run(until=60)
        reply = results["reply"]
        assert reply["success"]
        assert reply["payload"]["demod0"]["design"] == "modem.cdma"

    def test_unknown_protocol_rejected(self):
        sim, payload, gw, ncc = setup_scenario()
        errors = {}

        def campaign(sim):
            try:
                yield from ncc.reconfigure_equipment(
                    "demod0", "modem.tdma", protocol="carrier-pigeon"
                )
            except ValueError as exc:
                errors["err"] = str(exc)

        sim.process(campaign(sim))
        sim.run(until=60)
        assert "unknown protocol" in errors["err"]

    def test_traffic_resumes_after_reconfiguration(self):
        """After the in-orbit swap, the new TDMA personality demodulates."""
        sim, payload, gw, ncc = setup_scenario(num_carriers=1)

        def campaign(sim):
            yield from ncc.reconfigure_equipment(
                "demod0", "modem.tdma", protocol="ftp"
            )

        sim.process(campaign(sim))
        sim.run(until=3600)
        assert payload.demods[0].loaded_design == "modem.tdma"
        reg = RngRegistry(9)
        modem = payload.demods[0].behaviour()
        bits = [
            reg.stream("b").integers(0, 2, modem.bits_per_burst).astype(np.uint8)
        ]
        out = payload.process_uplink(payload.build_uplink(bits))
        assert np.mean(out["bits"][0] != bits[0]) == 0

    def test_results_accumulate(self):
        sim, payload, gw, ncc = setup_scenario()

        def campaign(sim):
            yield from ncc.reconfigure_equipment("demod0", "modem.tdma", protocol="ftp")
            yield from ncc.reconfigure_equipment("demod1", "modem.tdma", protocol="ftp")

        sim.process(campaign(sim))
        sim.run(until=3600)
        assert len(ncc.results) == 2
        assert all(r.success for r in ncc.results)
