"""Hypothesis invariants for the demand-path traffic model.

``ncc/traffic.py`` feeds the admission controller's capacity shares and
the mission planner's reconfiguration schedule, so its monotonicity and
sign properties are load-bearing for overload control: a negative
per-user demand or a non-monotone voice decay would silently corrupt
every capacity estimate derived from it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ncc.traffic import MissionPlanner, ServiceMix, TrafficModel

years = st.floats(min_value=0.0, max_value=30.0, allow_nan=False)

models = st.builds(
    TrafficModel,
    launch_total_mbps=st.floats(min_value=0.1, max_value=100.0),
    growth_per_year=st.floats(min_value=0.0, max_value=1.0),
    voice_initial=st.floats(min_value=0.3, max_value=0.95),
    voice_floor=st.floats(min_value=0.01, max_value=0.25),
    voice_decay_years=st.floats(min_value=0.5, max_value=10.0),
)


class TestMixAtProperties:
    @given(model=models, y1=years, y2=years)
    @settings(max_examples=60)
    def test_voice_decays_and_video_grows_monotonically(self, model, y1, y2):
        lo, hi = sorted((y1, y2))
        m_lo, m_hi = model.mix_at(lo), model.mix_at(hi)
        assert m_hi.voice <= m_lo.voice + 1e-9
        assert m_hi.video >= m_lo.video - 1e-9
        assert m_hi.total_mbps >= m_lo.total_mbps - 1e-9

    @given(model=models, y=years)
    @settings(max_examples=60)
    def test_mix_is_a_valid_distribution(self, model, y):
        mix = model.mix_at(y)
        assert np.isclose(mix.voice + mix.text + mix.video, 1.0)
        assert mix.voice >= 0 and mix.text >= 0 and mix.video >= 0

    @given(model=models, frac=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=60)
    def test_years_until_voice_below_is_consistent(self, model, frac):
        if frac <= model.vf:
            with pytest.raises(ValueError):
                model.years_until_voice_below(frac)
            return
        t = model.years_until_voice_below(frac)
        assert t >= 0.0
        if frac >= model.v0:
            assert t == 0.0
        else:
            # just after the crossing, voice is indeed below the target
            assert model.mix_at(t + 1e-6).voice <= frac + 1e-6


class TestPlannerProperties:
    @given(
        model=models,
        mission_years=st.floats(min_value=1.0, max_value=20.0),
        users=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=40)
    def test_schedule_ordered_and_demand_nonnegative(
        self, model, mission_years, users
    ):
        planner = MissionPlanner(model, mission_years=mission_years)
        plan = planner.schedule(users=users)
        yrs = [c.year for c in plan]
        assert yrs == sorted(yrs)
        assert all(0.0 <= y <= mission_years for y in yrs)
        # at most one waveform change and two decoder steps, never dupes
        assert len({(c.equipment, c.function) for c in plan}) == len(plan)

    @given(model=models, y=years, users=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=60)
    def test_per_user_demand_nonnegative_and_scales_down(self, model, y, users):
        planner = MissionPlanner(model)
        d = planner.per_user_demand(y, users)
        assert d >= 0.0
        assert planner.per_user_demand(y, users * 2) <= d + 1e-12

    @given(mission_years=st.floats(min_value=1.0, max_value=20.0))
    @settings(max_examples=40)
    def test_fractional_mission_boundary_included(self, mission_years):
        planner = MissionPlanner(TrafficModel(), mission_years=mission_years)
        plan = planner.schedule()
        assert all(c.year <= mission_years for c in plan)


class TestServiceMixValidation:
    def test_rejects_negative_fraction(self):
        with pytest.raises(ValueError):
            ServiceMix(year=0.0, voice=-0.1, text=0.6, video=0.5, total_mbps=1.0)

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            ServiceMix(year=0.0, voice=0.5, text=0.2, video=0.2, total_mbps=1.0)

    def test_rejects_negative_total_and_year(self):
        with pytest.raises(ValueError):
            ServiceMix(year=0.0, voice=0.5, text=0.3, video=0.2, total_mbps=-1.0)
        with pytest.raises(ValueError):
            ServiceMix(year=-1.0, voice=0.5, text=0.3, video=0.2, total_mbps=1.0)
