"""Repo-wide test configuration.

Registers hypothesis settings profiles:

- ``default`` -- hypothesis defaults, used for local development;
- ``ci`` -- derandomized (the failure a CI run finds is the failure the
  next run reproduces) with a bounded deadline so a slow shared runner
  cannot flake a property test.

Select with ``HYPOTHESIS_PROFILE=ci`` (the CI workflow does).
"""

import os

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis always in the test env
    settings = None

if settings is not None:
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=2000,
        max_examples=50,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
