"""Unit tests for repro.obs.metrics: Counter/Gauge/Histogram semantics."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    NULL_REGISTRY,
    Registry,
)


class TestCounter:
    def test_unlabeled_inc(self):
        reg = Registry()
        c = reg.counter("a.b.frames")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.value("a.b.frames") == 5

    def test_negative_increment_rejected(self):
        c = Registry().counter("x")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labeled_series_are_independent(self):
        reg = Registry()
        c = reg.counter("net.link.frames", ("link",))
        c.labels(link="up").inc(3)
        c.labels(link="down").inc(7)
        assert reg.value("net.link.frames", link="up") == 3
        assert reg.value("net.link.frames", link="down") == 7
        assert c.num_series == 2

    def test_unlabeled_access_on_labeled_metric_raises(self):
        c = Registry().counter("m", ("x",))
        with pytest.raises(MetricError):
            c.inc()

    def test_wrong_label_names_raise(self):
        c = Registry().counter("m", ("x",))
        with pytest.raises(MetricError):
            c.labels(y=1)
        with pytest.raises(MetricError):
            c.labels(x=1, y=2)

    def test_same_name_same_instance(self):
        reg = Registry()
        assert reg.counter("m") is reg.counter("m")

    def test_type_clash_raises(self):
        reg = Registry()
        reg.counter("m")
        with pytest.raises(MetricError):
            reg.gauge("m")
        with pytest.raises(MetricError):
            reg.counter("m", ("other",))  # label-set clash too


class TestLabelCardinality:
    def test_overflow_folds_instead_of_growing(self):
        reg = Registry()
        c = Counter("m", ("k",), max_series=3)
        for i in range(10):
            c.labels(k=f"v{i}").inc()
        # 3 real series + the shared overflow series
        assert c.num_series == 4
        assert c.overflowed == 7
        overflow = c.labels_overflow()
        assert overflow.value == 7
        # existing series still addressable and isolated
        assert c.labels(k="v0").value == 1

    def test_overflow_series_reused(self):
        c = Counter("m", ("k",), max_series=1)
        c.labels(k="a").inc()
        s1 = c.labels(k="b")
        s2 = c.labels(k="c")
        assert s1 is s2


class TestGauge:
    def test_set_inc_dec(self):
        g = Registry().gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_labeled(self):
        reg = Registry()
        g = reg.gauge("q", ("name",))
        g.labels(name="a").set(2.5)
        assert reg.value("q", name="a") == 2.5


class TestHistogram:
    def test_observe_and_export(self):
        reg = Registry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        out = reg.value("lat")
        assert out["count"] == 5
        assert out["sum"] == pytest.approx(56.05)
        assert out["min"] == 0.05
        assert out["max"] == 50.0
        assert out["buckets"]["0.1"] == 1
        assert out["buckets"]["1.0"] == 2
        assert out["buckets"]["10.0"] == 1
        assert out["buckets"]["inf"] == 1

    def test_inf_bucket_appended(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.buckets[-1] == float("inf")

    def test_empty_buckets_rejected(self):
        with pytest.raises(MetricError):
            Histogram("h", buckets=())


class TestRegistryLifecycle:
    def _populated(self):
        reg = Registry()
        reg.counter("c", ("k",)).labels(k="x").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.2)
        return reg

    def test_export_shape_is_json_able(self):
        reg = self._populated()
        out = reg.export()
        # stable, sorted, round-trippable
        assert list(out) == ["c", "g", "h"]
        assert out["c"]["type"] == "counter"
        assert out["c"]["label_names"] == ["k"]
        assert out["c"]["series"] == {"x": 2}
        json.dumps(out)  # must not raise

    def test_snapshot_isolation(self):
        reg = self._populated()
        snap = reg.snapshot()
        reg.counter("c", ("k",)).labels(k="x").inc(100)
        reg.gauge("g").set(99)
        assert snap["c"]["series"]["x"] == 2
        assert snap["g"]["series"][""] == 1.5
        assert reg.snapshot()["c"]["series"]["x"] == 102

    def test_reset_zeroes_but_keeps_registration(self):
        reg = self._populated()
        reg.reset()
        assert reg.names() == ["c", "g", "h"]
        assert all(m["series"] == {} for m in reg.export().values())
        # series recreate from zero
        reg.counter("c", ("k",)).labels(k="x").inc()
        assert reg.value("c", k="x") == 1

    def test_clear_forgets_everything(self):
        reg = self._populated()
        reg.clear()
        assert reg.export() == {}

    def test_value_unknown_returns_none(self):
        reg = self._populated()
        assert reg.value("nope") is None
        assert reg.value("c", k="unseen") is None
        assert reg.value("c", wrong="x") is None


class TestNullRegistry:
    def test_everything_is_a_silent_noop(self):
        NULL_REGISTRY.counter("a").inc(5)
        NULL_REGISTRY.gauge("b").set(3)
        NULL_REGISTRY.histogram("c").observe(1)
        NULL_REGISTRY.counter("d", ("k",)).labels(k="x").inc()
        assert NULL_REGISTRY.export() == {}
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.value("a") is None
        assert "a" not in NULL_REGISTRY
        NULL_REGISTRY.reset()
        NULL_REGISTRY.clear()
