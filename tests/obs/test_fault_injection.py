"""Fault injection under observation: counters must match observed behavior.

Three fault domains from the paper's operational scenario are driven with
observability enabled and the resulting metrics cross-checked against the
ground truth each subsystem already keeps in its ``stats`` dicts:

- a lossy GEO :class:`~repro.net.simnet.Link` dropping whole frames under
  TFTP (stop-and-wait -> timeouts and retransmissions) and TCP
  (go-back-N -> RTO retransmissions) -- the transfers must nevertheless
  complete;
- an SEU burst injected between FPGA configuration and CRC validation via
  ``ReconfigurationManager.execute(..., corrupt_hook=...)`` -- the manager
  must roll back and the rollback must show up in ``core.reconfig.*``.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import BitstreamLibrary, ReconfigurationManager, default_registry
from repro.core.equipment import ReconfigurableEquipment
from repro.fpga import Fpga
from repro.net import (
    Link,
    Node,
    TcpConnection,
    TcpListener,
    TftpClient,
    TftpServer,
)
from repro.sim import RngRegistry, Simulator

GEOM = (8, 8, 32)


def lossy_pair(sim, ber, seed, error_mode="drop", name="geo"):
    a = Node(sim, "ncc", 1)
    b = Node(sim, "sat", 2)
    rng = RngRegistry(seed).stream("link")
    link = Link(
        sim, delay=0.25, rate_bps=1e6, ber=ber, rng=rng,
        name=name, error_mode=error_mode,
    )
    link.attach(a)
    link.attach(b)
    return a, b, link


class TestTftpOverLossyLink:
    """Stop-and-wait over a dropping link: retries fire, transfer lands."""

    PAYLOAD = bytes(range(256)) * 24  # 6 KiB -> 12+ blocks

    def _run(self, seed, ber=1e-4):
        with obs.session() as (reg, tr):
            sim = Simulator()
            a, b, link = lossy_pair(sim, ber, seed)
            server = TftpServer(b.ip)
            client = TftpClient(a.ip, server_addr=2, timeout=2.0, retries=16)
            done = {}

            def proc(sim):
                yield from client.write("cfg.bit", self.PAYLOAD)
                done["t"] = sim.now

            sim.process(proc(sim))
            sim.run(until=1200)
            return reg, tr, link, server, done

    def test_transfer_completes_despite_drops(self):
        reg, tr, link, server, done = self._run(seed=7)
        assert "t" in done, "transfer stalled"
        assert server.files["cfg.bit"] == self.PAYLOAD
        # the link really was hostile
        assert link.stats["dropped"] > 0

    def test_counters_match_link_ground_truth(self):
        reg, tr, link, server, done = self._run(seed=7)
        assert reg.value("net.link.frames", link="geo") == link.stats["frames"]
        assert reg.value("net.link.bytes", link="geo") == link.stats["bytes"]
        assert reg.value("net.link.dropped", link="geo") == link.stats["dropped"]
        # every drop was also traced as an event
        drops = [e for e in tr.events() if e.kind == "link.drop"]
        assert len(drops) == link.stats["dropped"]

    def test_retransmission_counters_nonzero(self):
        reg, _, link, _, done = self._run(seed=7)
        assert "t" in done
        retrans = reg.value("net.tftp.retransmits", role="client") or 0
        timeouts = reg.value("net.tftp.timeouts", role="client") or 0
        # a dropped DATA or ACK frame must surface as a timeout and a
        # retransmission somewhere in the stop-and-wait loop
        assert timeouts > 0
        assert retrans > 0

    def test_clean_link_has_no_retries(self):
        reg, tr, link, server, done = self._run(seed=7, ber=0.0)
        assert server.files["cfg.bit"] == self.PAYLOAD
        assert link.stats["dropped"] == 0
        assert (reg.value("net.tftp.timeouts", role="client") or 0) == 0
        assert (reg.value("net.tftp.retransmits", role="client") or 0) == 0


class TestTcpOverLossyLink:
    """Go-back-N over a dropping link: RTO retransmits, stream intact."""

    PAYLOAD = np.random.default_rng(99).bytes(16384)

    def _run(self, seed, ber=5e-5):
        with obs.session() as (reg, tr):
            sim = Simulator()
            a, b, link = lossy_pair(sim, ber, seed)
            result = {}
            conns = {}

            def srv(sim):
                lst = TcpListener(b.ip, 2100)
                conn = yield lst.accept()
                got = bytearray()
                while True:
                    chunk = yield conn.recv()
                    if chunk is None:
                        break
                    got.extend(chunk)
                result["data"] = bytes(got)

            def cli(sim):
                conn = TcpConnection(a.ip, 41000, 2, 2100)
                conns["cli"] = conn
                yield conn.connect()
                conn.send(self.PAYLOAD)
                conn.close()
                yield conn.wait_closed()

            sim.process(srv(sim))
            sim.process(cli(sim))
            sim.run(until=1200)
            return reg, tr, link, result, conns["cli"]

    def test_stream_survives_drops(self):
        reg, tr, link, result, conn = self._run(seed=3)
        assert result.get("data") == self.PAYLOAD
        assert link.stats["dropped"] > 0

    def test_retransmit_counter_matches_connection_stats(self):
        reg, tr, link, result, conn = self._run(seed=3)
        label = "41000->2:2100"
        assert conn.stats["retransmits"] > 0
        assert reg.value("net.tcp.retransmits", conn=label) == conn.stats["retransmits"]
        assert reg.value("net.tcp.segments_out", conn=label) == conn.stats["segments_out"]
        assert reg.value("net.tcp.segments_in", conn=label) == conn.stats["segments_in"]
        # each RTO expiry was traced
        rto_events = [e for e in tr.events() if e.kind == "tcp.retransmit"]
        assert len(rto_events) == conn.stats["retransmits"]


class TestReconfigRollbackUnderUpset:
    """SEU during load -> CRC validation fails -> rollback, all observed."""

    def _stack(self):
        reg = default_registry()
        fpga = Fpga(
            rows=GEOM[0], cols=GEOM[1], bits_per_clb=GEOM[2],
            gate_capacity=1_200_000, essential_fraction=0.1,
        )
        eq = ReconfigurableEquipment("demod0", fpga, reg, "modem")
        lib = BitstreamLibrary()
        for name in ("modem.cdma", "modem.tdma"):
            lib.store(reg.get(name).bitstream_for(*GEOM))
        return eq, lib

    def test_rollback_counter_nonzero(self):
        with obs.session() as (mreg, tr):
            eq, lib = self._stack()
            eq.load("modem.cdma")
            mgr = ReconfigurationManager(lib)

            def corrupt(fpga):
                fpga.upset_bits(np.arange(16))

            report = mgr.execute(eq, "modem.tdma", corrupt_hook=corrupt)
            assert not report.success and report.rolled_back
            assert mreg.value("core.reconfig.attempts") == 1
            assert mreg.value("core.reconfig.failures") == 1
            assert mreg.value("core.reconfig.rollbacks") == 1
            assert (mreg.value("core.reconfig.success") or 0) == 0
            # the SEU injection itself was observed by the FPGA probe
            assert (
                mreg.value("fpga.device.upsets_injected", device=eq.fpga.name)
                == 16
            )
            # the outage distribution recorded the failed attempt
            outage = mreg.value("core.reconfig.outage_seconds")
            assert outage["count"] == 1 and outage["sum"] > 0
            kinds = [e.kind for e in tr.events()]
            assert "reconfig.start" in kinds and "reconfig.done" in kinds
            done_ev = [e for e in tr.events() if e.kind == "reconfig.done"][-1]
            assert done_ev.fields["rolled_back"] is True

    def test_success_path_counts_success_not_rollback(self):
        with obs.session() as (mreg, _):
            eq, lib = self._stack()
            eq.load("modem.cdma")
            mgr = ReconfigurationManager(lib)
            report = mgr.execute(eq, "modem.tdma")
            assert report.success
            assert mreg.value("core.reconfig.success") == 1
            assert (mreg.value("core.reconfig.rollbacks") or 0) == 0

    def test_validation_service_counters(self):
        with obs.session() as (mreg, _):
            eq, lib = self._stack()
            eq.load("modem.cdma")
            mgr = ReconfigurationManager(lib)
            mgr.execute(eq, "modem.tdma")  # pass
            mgr.execute(
                eq, "modem.cdma",
                corrupt_hook=lambda f: f.upset_bits(np.arange(8)),
            )  # fail
            assert mreg.value(
                "core.services.validation_pass", service="validation"
            ) == 1
            assert mreg.value(
                "core.services.validation_fail", service="validation"
            ) == 1
