"""Unit tests for repro.obs.trace: ring buffer, spans, canonical hashing."""

import pytest

from repro.obs.trace import NULL_TRACER, Tracer


class TestRingBuffer:
    def test_emit_and_read_in_order(self):
        tr = Tracer(capacity=16)
        for i in range(5):
            tr.emit("k", t=float(i), i=i)
        evs = list(tr.events())
        assert [e.seq for e in evs] == [0, 1, 2, 3, 4]
        assert [e.t for e in evs] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert len(tr) == 5
        assert tr.total == 5
        assert tr.dropped == 0

    def test_eviction_drops_oldest(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            tr.emit("k", t=float(i), i=i)
        evs = list(tr.events())
        assert len(evs) == 4
        assert [e.fields["i"] for e in evs] == [6, 7, 8, 9]
        assert tr.total == 10
        assert tr.dropped == 6
        # seq numbering is global, not per-ring
        assert [e.seq for e in evs] == [6, 7, 8, 9]

    def test_capacity_one(self):
        tr = Tracer(capacity=1)
        tr.emit("a")
        tr.emit("b")
        assert [e.kind for e in tr.events()] == ["b"]
        assert tr.dropped == 1

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear(self):
        tr = Tracer(capacity=4)
        tr.emit("a")
        tr.clear()
        assert len(tr) == 0
        assert tr.total == 0
        assert list(tr.events()) == []


class TestClockAndSpans:
    def test_default_clock_is_zero(self):
        tr = Tracer()
        ev = tr.emit("k")
        assert ev.t == 0.0

    def test_bound_clock(self):
        now = {"t": 1.5}
        tr = Tracer(clock=lambda: now["t"])
        assert tr.emit("k").t == 1.5
        now["t"] = 3.0
        assert tr.emit("k").t == 3.0
        tr.set_clock(None)
        assert tr.emit("k").t == 0.0

    def test_span_records_duration(self):
        now = {"t": 10.0}
        tr = Tracer(clock=lambda: now["t"])
        span = tr.span("xfer", file="f.bit")
        now["t"] = 12.5
        span.end(blocks=3)
        begin, end = list(tr.events())
        assert begin.kind == "xfer.begin"
        assert begin.fields["file"] == "f.bit"
        assert end.kind == "xfer.end"
        assert end.fields["dur"] == pytest.approx(2.5)
        assert end.fields["blocks"] == 3
        # double-end is a no-op
        span.end()
        assert tr.total == 2

    def test_span_context_manager(self):
        tr = Tracer()
        with tr.span("op"):
            pass
        kinds = [e.kind for e in tr.events()]
        assert kinds == ["op.begin", "op.end"]
        assert list(tr.events())[-1].fields["ok"] is True


class TestCanonicalHash:
    def test_identical_traces_hash_identically(self):
        def build():
            tr = Tracer(capacity=8)
            tr.emit("a", t=0.5, x=1, y="s")
            tr.emit("b", t=1.25, z=[1, 2])
            return tr

        assert build().hash() == build().hash()
        assert build().canonical() == build().canonical()

    def test_field_order_does_not_matter(self):
        t1, t2 = Tracer(), Tracer()
        t1.emit("k", t=1.0, a=1, b=2)
        t2.emit("k", t=1.0, b=2, a=1)
        assert t1.hash() == t2.hash()

    def test_any_difference_changes_hash(self):
        base = Tracer()
        base.emit("k", t=1.0, a=1)
        for mutant_fields in ({"a": 2}, {"a": 1, "b": 0}):
            m = Tracer()
            m.emit("k", t=1.0, **mutant_fields)
            assert m.hash() != base.hash()
        m = Tracer()
        m.emit("k", t=1.0000001, a=1)
        assert m.hash() != base.hash()

    def test_evicted_events_participate_via_header(self):
        # same retained window, different eviction history -> different hash
        t1 = Tracer(capacity=2)
        t2 = Tracer(capacity=2)
        for i in range(4):
            t1.emit("k", t=float(i), i=i)
        for i in range(2, 4):
            t2.emit("k", t=float(i), i=i)
        assert [e.fields["i"] for e in t1.events()] == [
            e.fields["i"] for e in t2.events()
        ]
        assert t1.hash() != t2.hash()

    def test_canonical_is_bytes_with_header(self):
        tr = Tracer(capacity=4)
        tr.emit("k", t=0.0)
        data = tr.canonical()
        assert isinstance(data, bytes)
        assert data.startswith(b"# trace total=1 dropped=0 capacity=4\n")


class TestNullTracer:
    def test_noop(self):
        NULL_TRACER.emit("k", x=1)
        with NULL_TRACER.span("s"):
            pass
        assert len(NULL_TRACER) == 0
        assert list(NULL_TRACER.events()) == []
        assert NULL_TRACER.canonical() == b""
        assert NULL_TRACER.hash() == ""
