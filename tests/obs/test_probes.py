"""Tests for the enable/disable switch and the Probe hook."""

from repro import obs
from repro.obs.probes import probe
from repro.sim import Simulator


class TestSessionSwitch:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()
        assert probe("any.subsystem") is None

    def test_session_enables_and_restores(self):
        assert not obs.is_enabled()
        with obs.session() as (reg, tr):
            assert obs.is_enabled()
            assert obs.get_registry() is reg
            assert obs.get_tracer() is tr
            assert probe("x") is not None
        assert not obs.is_enabled()
        assert probe("x") is None

    def test_session_restores_on_exception(self):
        try:
            with obs.session():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not obs.is_enabled()

    def test_nested_sessions_restore_outer(self):
        with obs.session() as (outer_reg, _):
            with obs.session() as (inner_reg, _):
                assert inner_reg is not outer_reg
                assert obs.get_registry() is inner_reg
            assert obs.get_registry() is outer_reg

    def test_explicit_instances(self):
        reg, tr = obs.Registry(), obs.Tracer(capacity=4)
        with obs.session(registry=reg, tracer=tr) as (r, t):
            assert r is reg and t is tr


class TestProbe:
    def test_series_naming_and_labels(self):
        with obs.session() as (reg, _):
            p = probe("net.link", link="uplink")
            p.count("frames", 3)
            p.gauge("depth", 7)
            p.observe("latency", 0.25)
            assert reg.value("net.link.frames", link="uplink") == 3
            assert reg.value("net.link.depth", link="uplink") == 7
            assert reg.value("net.link.latency", link="uplink")["count"] == 1

    def test_series_handles_are_cached(self):
        with obs.session():
            p = probe("x")
            assert p.counter("c") is p.counter("c")
            assert p.gauge_series("g") is p.gauge_series("g")
            assert p.histogram_series("h") is p.histogram_series("h")

    def test_events_merge_probe_labels(self):
        with obs.session() as (_, tr):
            p = probe("net.link", link="up")
            p.event("link.drop", t=1.5, bytes=540)
            (ev,) = list(tr.events())
            assert ev.kind == "link.drop"
            assert ev.fields == {"link": "up", "bytes": 540}
            assert ev.t == 1.5

    def test_probe_spans(self):
        with obs.session() as (_, tr):
            p = probe("core", eq="demod0")
            sp = p.span("reconfig", t=0.0)
            sp.end(t=2.0, ok=True)
            kinds = [e.kind for e in tr.events()]
            assert kinds == ["reconfig.begin", "reconfig.end"]
            assert list(tr.events())[0].fields["eq"] == "demod0"


class TestInstrumentedKernelLifecycle:
    def test_objects_built_outside_session_stay_silent(self):
        sim = Simulator()  # built while disabled
        with obs.session() as (reg, _):
            sim.timeout(1.0)
            sim.run()
            assert reg.value("sim.kernel.events_fired") is None

    def test_objects_built_inside_session_report(self):
        with obs.session() as (reg, tr):
            sim = Simulator()

            def proc(sim):
                yield sim.timeout(1.0)

            sim.process(proc(sim), name="p0")
            sim.run()
            assert reg.value("sim.kernel.events_fired") == sim.event_count
            assert reg.value("sim.kernel.processes_started") == 1
            assert reg.value("sim.kernel.processes_ended") == 1
            assert reg.value("sim.kernel.processes_alive") == 0
            lifetimes = reg.value("sim.kernel.process_lifetime")
            assert lifetimes["count"] == 1
            assert lifetimes["sum"] == 1.0
            kinds = [e.kind for e in tr.events()]
            assert "proc.start" in kinds and "proc.end" in kinds
