"""Golden-trace determinism: the trace hash as a regression oracle.

The end-to-end reconfiguration scenario (NCC uploads a bitstream over
the lossy GEO link, commands the swap, verifies the CRC telemetry) is
run under an observability session.  Identical seeds must produce
byte-identical canonical trace serializations -- any nondeterminism in
the kernel, the network stack or the instrumentation itself breaks this
test.  Different seeds must diverge (the trace actually depends on the
injected randomness, i.e. it is not vacuously constant).
"""

import pytest

from repro import obs
from repro.core import PayloadConfig, RegenerativePayload
from repro.ncc import NetworkControlCenter, SatelliteGateway
from repro.net import Link, Node
from repro.sim import RngRegistry, Simulator

GEOM = (8, 8, 32)
SMALL = dict(fpga_rows=GEOM[0], fpga_cols=GEOM[1], fpga_bits_per_clb=GEOM[2])


def run_reconfiguration_campaign(seed: int, ber: float = 2e-5):
    """One full upload-and-reconfigure campaign over a lossy GEO link.

    Returns ``(trace_hash, canonical_bytes, registry_snapshot, result)``.
    """
    with obs.session(tracer=obs.Tracer(capacity=65536)) as (reg, tr):
        sim = Simulator()
        ground = Node(sim, "ncc", 1)
        space = Node(sim, "sat", 2)
        rng = RngRegistry(seed).stream("link")
        link = Link(sim, delay=0.25, rate_bps=1e6, ber=ber, rng=rng)
        link.attach(ground)
        link.attach(space)
        payload = RegenerativePayload(PayloadConfig(num_carriers=1, **SMALL))
        payload.boot(modem="modem.cdma")
        SatelliteGateway(space, payload)
        ncc = NetworkControlCenter(ground, payload.registry, 2, GEOM)
        done = {}

        def campaign(sim):
            done["res"] = yield from ncc.reconfigure_equipment(
                "demod0", "modem.tdma", protocol="ftp"
            )

        sim.process(campaign(sim))
        sim.run(until=3600)
        return tr.hash(), tr.canonical(), reg.snapshot(), done.get("res")


class TestGoldenTrace:
    @pytest.mark.slow
    def test_same_seed_is_byte_identical(self):
        h1, canon1, snap1, res1 = run_reconfiguration_campaign(seed=2003)
        h2, canon2, snap2, res2 = run_reconfiguration_campaign(seed=2003)
        assert res1 is not None and res1.success
        assert res2 is not None and res2.success
        assert canon1 == canon2  # byte-identical canonical serialization
        assert h1 == h2
        # the metrics snapshot is deterministic too
        assert snap1 == snap2

    @pytest.mark.slow
    def test_different_seeds_diverge(self):
        # A hot link (high BER) guarantees seed-dependent corruption events
        # land in the trace; at the nominal BER the tiny test bitstream can
        # cross unscathed for *any* seed, making the hashes vacuously equal.
        h1, _, _, _ = run_reconfiguration_campaign(seed=2003, ber=5e-4)
        h2, _, _, _ = run_reconfiguration_campaign(seed=2004, ber=5e-4)
        assert h1 != h2

    def test_trace_is_nonempty_and_timed(self):
        _, canon, snap, res = run_reconfiguration_campaign(seed=5)
        assert res is not None and res.success
        lines = canon.decode().strip().splitlines()
        assert lines[0].startswith("# trace")
        assert len(lines) > 10  # proc.start/end, reconfig.*, fpga.* ...
        # kernel metrics observed the same run (the 8x8x32 bitstream is
        # only 256 bytes, so the whole campaign is a few dozen events)
        assert snap["sim.kernel.events_fired"]["series"][""] > 40


class TestSmallDeterminism:
    """Cheap kernel-only determinism check (not marked slow)."""

    def _run(self, seed):
        with obs.session() as (_, tr):
            sim = Simulator()
            rng = RngRegistry(seed).stream("sched")

            def worker(sim, i):
                yield sim.timeout(float(rng.random()))
                yield sim.timeout(float(rng.random()))

            for i in range(10):
                sim.process(worker(sim, i), name=f"w{i}")
            sim.run()
            return tr.hash()

    def test_repeatable(self):
        assert self._run(1) == self._run(1)

    def test_seed_sensitive(self):
        assert self._run(1) != self._run(2)
